"""The unified query API: ``open_dataset`` + ``QueryRequest``/``QueryResult``.

Every read path — :meth:`~repro.core.dataset.BATDataset.query`, the serve
layer's request parsing, the ``repro query`` CLI — speaks one request
shape. A :class:`QueryRequest` captures *what* to read (box, filters,
quality window, columns, traversal engine, error policy) independently of
*where* it runs, so the same request object can be replayed against a
dataset, a time series, or the concurrent service and must produce
byte-identical data.

Typical use::

    import repro

    ds = repro.open_dataset("out/ts0000.meta.json")
    result = ds.query(repro.QueryRequest(quality=0.3, columns=("temp",)))
    print(len(result.batch), result.stats.files_opened)

The pre-1.x keyword signatures (``ds.query(quality=0.3, box=...)``) keep
working as thin shims that emit one :class:`DeprecationWarning` per call
form and return the old ``(batch, stats)`` tuple; :class:`QueryResult`
iterates as ``(batch, stats)`` too, so two-value unpacking works against
either form.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from .errors import InvalidRequestError
from .types import Box, ParticleBatch

__all__ = [
    "Request",
    "QueryRequest",
    "NeighborRequest",
    "QueryResult",
    "NeighborResult",
    "StreamIncrement",
    "reassemble_stream",
    "request_to_doc",
    "request_from_doc",
    "open_dataset",
]

#: legal ``on_error`` policies for corrupt/missing leaf files
ON_ERROR_POLICIES = ("raise", "degrade")

#: traversal engines a :class:`NeighborRequest` may choose: ``"tree"``
#: (best-first k-d pruning, the default) or ``"brute"`` (the exhaustive
#: reference — opens and tests everything; kept byte-identical as the
#: correctness oracle)
NEIGHBOR_ENGINES = ("tree", "brute")

# one DeprecationWarning per distinct legacy call form, process-wide —
# a loop over the old signature must not flood the user's terminal
_warned_forms: set[str] = set()
_warn_lock = threading.Lock()


def warn_deprecated(form: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per distinct ``form``."""
    with _warn_lock:
        if form in _warned_forms:
            return
        _warned_forms.add(form)
    warnings.warn(
        f"{form} is deprecated; {replacement}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _reset_deprecation_warnings() -> None:
    """Forget which legacy forms already warned (test isolation hook)."""
    with _warn_lock:
        _warned_forms.clear()


@dataclass(frozen=True)
class Request:
    """Frozen base of every request family.

    Carries the fields the families share — ``filters``, ``columns``,
    ``engine``, ``on_error`` — plus the common construction-time
    machinery: sequence fields are frozen to tuples, the error policy is
    checked, and then the subclass's :meth:`_validate` hook runs. Every
    request is therefore hashable and comparable the moment it exists,
    so request objects key the plan/result/collapse caches directly, and
    an invalid request fails at construction with an
    :class:`~repro.errors.InvalidRequestError` naming the offending
    field — never deep inside a traversal.

    ``family`` is the wire-format discriminator used by
    :func:`request_to_doc` / :func:`request_from_doc` and by the serve
    tier's cache and collapse keys.
    """

    filters: tuple = ()
    columns: tuple[str, ...] | None = None
    engine: str = "frontier"
    on_error: str = "raise"

    family: ClassVar[str] = "query"

    def __post_init__(self):
        object.__setattr__(self, "filters", tuple(self.filters))
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))
        if self.on_error not in ON_ERROR_POLICIES:
            raise InvalidRequestError("on_error must be 'raise' or 'degrade'")
        self._validate()

    def _validate(self) -> None:
        """Family-specific construction checks (subclass hook)."""


@dataclass(frozen=True)
class QueryRequest(Request):
    """One immutable description of a (progressive) read.

    ``quality``/``prev_quality`` bound the progressive increment: the
    request loads the data between the two quality levels, so
    ``QueryRequest(quality=0.7, prev_quality=0.3)`` is the refinement a
    viewer issues after already holding the 0.3 view. ``columns`` names
    the columns to materialize (``None`` means all); on a v4 file,
    unrequested columns are never even decoded. An explicit selection may
    include the pseudo-column ``"positions"``; leaving it out projects
    positions away too — the result batch then has ``positions=None`` and
    carries its row count in ``batch.count``, and on v4 files the
    position payload is only decoded where a box test needs it (so
    ``QueryRequest(columns=("temp",))`` decodes roughly just the ``temp``
    column). ``on_error``
    chooses what a corrupt or missing leaf file does: ``"raise"`` (the
    default) or ``"degrade"`` to quarantine it and return the partial
    result from the surviving files.

    Requests are hashable and comparable, so they key caches directly.
    """

    box: Box | None = None
    quality: float = 1.0
    prev_quality: float = 0.0

    family: ClassVar[str] = "query"

    def _validate(self):
        # quality 0.0 is a valid (empty) read — progressive loops start there
        if not 0.0 <= self.quality <= 1.0:
            raise InvalidRequestError(
                f"quality must be in [0, 1], got {self.quality}"
            )
        if not 0.0 <= self.prev_quality <= self.quality:
            raise InvalidRequestError(
                f"prev_quality must be in [0, quality], got "
                f"{self.prev_quality} with quality {self.quality}"
            )


@dataclass(frozen=True)
class NeighborRequest(Request):
    """One immutable description of a neighbor-list query.

    Centers come from exactly one of two sources: ``points`` (an explicit
    sequence of ``(x, y, z)`` probe positions, frozen to a tuple of float
    triples) or ``center_box`` (every stored particle inside the box
    becomes a center, in the dataset's canonical file/treelet/slot
    order). Exactly one of ``k`` (the *k* nearest neighbors per center)
    and ``radius`` (all neighbors with distance ≤ radius) selects the
    query mode; both are validated here, at construction — ``k >= 1``,
    ``radius > 0`` and finite — so a degenerate request can never reach
    the planner's ghost-halo expansion.

    ``filters`` restrict which particles participate at all: as
    neighbors always, and — for ``center_box`` requests — as centers
    too, so a filtered friends-of-friends run links only the particles
    that pass. A center is its own neighbor when it is a stored particle
    (distance 0 sorts first). Per-center neighbor lists are ordered by
    ``(distance, leaf, treelet, slot)`` — the global particle order-key
    breaks distance ties, which makes results reproducible across
    executors, engines, and shard layouts (see docs/API.md).
    """

    center_box: Box | None = None
    points: tuple | None = None
    k: int | None = None
    radius: float | None = None
    engine: str = "tree"

    family: ClassVar[str] = "neighbor"

    def _validate(self):
        if self.points is not None:
            try:
                pts = tuple(
                    tuple(float(c) for c in p) for p in self.points
                )
            except (TypeError, ValueError):
                raise InvalidRequestError(
                    "points must be a sequence of (x, y, z) triples"
                ) from None
            if not pts:
                raise InvalidRequestError(
                    "points must name at least one center (got an empty "
                    "sequence); omit it to use center_box instead"
                )
            for p in pts:
                if len(p) != 3:
                    raise InvalidRequestError(
                        f"points entries must be (x, y, z) triples, got "
                        f"a length-{len(p)} entry"
                    )
                if not all(np.isfinite(c) for c in p):
                    raise InvalidRequestError(
                        f"points entries must be finite, got {p}"
                    )
            object.__setattr__(self, "points", pts)
        if (self.center_box is None) == (self.points is None):
            raise InvalidRequestError(
                "exactly one of center_box and points must be given"
            )
        if self.center_box is not None:
            if not isinstance(self.center_box, Box):
                raise InvalidRequestError(
                    f"center_box must be a Box, got "
                    f"{type(self.center_box).__name__}"
                )
            if self.center_box.is_empty:
                raise InvalidRequestError("center_box must not be empty")
        if (self.k is None) == (self.radius is None):
            raise InvalidRequestError(
                "exactly one of k and radius must be given"
            )
        if self.k is not None:
            if isinstance(self.k, bool) or not isinstance(
                self.k, (int, np.integer)
            ):
                raise InvalidRequestError(
                    f"k must be an integer >= 1, got {self.k!r}"
                )
            if self.k < 1:
                raise InvalidRequestError(f"k must be >= 1, got {self.k}")
            object.__setattr__(self, "k", int(self.k))
        if self.radius is not None:
            try:
                r = float(self.radius)
            except (TypeError, ValueError):
                raise InvalidRequestError(
                    f"radius must be a finite number > 0, got {self.radius!r}"
                ) from None
            if not np.isfinite(r) or not r > 0.0:
                raise InvalidRequestError(
                    f"radius must be a finite number > 0, got {self.radius!r}"
                )
            object.__setattr__(self, "radius", r)
        if self.engine not in NEIGHBOR_ENGINES:
            raise InvalidRequestError(
                f"unknown neighbor engine {self.engine!r} "
                f"(choose from {NEIGHBOR_ENGINES})"
            )

    @property
    def region(self) -> Box:
        """Tight box around the query centers (the pre-halo query region)."""
        if self.center_box is not None:
            return self.center_box
        return Box.of_points(np.asarray(self.points, dtype=np.float64))


@dataclass(frozen=True)
class QueryResult:
    """What one request returned: the batch plus traversal statistics.

    Iterates as ``(batch, stats)`` so existing two-value unpacking keeps
    working; ``batch`` is ``None`` for callback (streaming) queries,
    where the data was delivered chunk-by-chunk instead.
    """

    batch: ParticleBatch | None
    stats: object = field(repr=False, default=None)

    def __iter__(self):
        yield self.batch
        yield self.stats

    def __len__(self) -> int:
        return len(self.batch) if self.batch is not None else 0


@dataclass(frozen=True, eq=False)
class NeighborResult:
    """What one :class:`NeighborRequest` returned.

    Per-center neighbor lists in CSR form: center ``i``'s neighbors are
    rows ``offsets[i]:offsets[i+1]`` of ``batch`` / ``distances`` /
    ``keys``. Within each list rows ascend by ``(distance, leaf,
    treelet, slot)`` — the deterministic tie-break contract — and
    ``keys`` carries each neighbor's global ``(leaf, treelet, slot)``
    order-key so two results can be compared (or joined against the
    center set) without relying on float identity.

    ``centers`` holds the resolved query centers (float64, request
    order); ``center_keys`` their order-keys when the centers came from
    ``center_box`` (``None`` for explicit ``points``). ``stats`` is a
    :class:`~repro.bat.neighbors.NeighborStats` with the traversal and
    ghost-exchange work counters.
    """

    centers: np.ndarray
    offsets: np.ndarray
    batch: ParticleBatch | None
    distances: np.ndarray
    keys: np.ndarray
    center_keys: np.ndarray | None = None
    stats: object = field(repr=False, default=None)

    def __len__(self) -> int:
        """Total neighbor rows across all centers."""
        return int(self.offsets[-1]) if len(self.offsets) else 0

    @property
    def n_centers(self) -> int:
        return len(self.offsets) - 1 if len(self.offsets) else 0

    @property
    def counts(self) -> np.ndarray:
        """Neighbors found per center (``(C,)`` int64)."""
        return np.diff(self.offsets)

    @property
    def nbytes(self) -> int:
        n = (
            self.centers.nbytes + self.offsets.nbytes
            + self.distances.nbytes + self.keys.nbytes
        )
        if self.center_keys is not None:
            n += self.center_keys.nbytes
        if self.batch is not None:
            n += self.batch.nbytes
        return n

    def neighbors(self, i: int) -> slice:
        """Row slice of center ``i``'s neighbor list."""
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))


def request_to_doc(req: Request) -> dict:
    """Serialize any request family to a plain-JSON wire doc.

    The inverse of :func:`request_from_doc`; the shard router uses this
    pair to move requests across process boundaries without pickling.
    """
    doc = {
        "family": req.family,
        "filters": [[f.name, float(f.lo), float(f.hi)] for f in req.filters],
        "columns": list(req.columns) if req.columns is not None else None,
        "engine": req.engine,
        "on_error": req.on_error,
    }
    if isinstance(req, QueryRequest):
        doc["box"] = (
            [list(map(float, req.box.lower)), list(map(float, req.box.upper))]
            if req.box is not None else None
        )
        doc["quality"] = float(req.quality)
        doc["prev_quality"] = float(req.prev_quality)
    elif isinstance(req, NeighborRequest):
        doc["center_box"] = (
            [list(map(float, req.center_box.lower)),
             list(map(float, req.center_box.upper))]
            if req.center_box is not None else None
        )
        doc["points"] = (
            [list(map(float, p)) for p in req.points]
            if req.points is not None else None
        )
        doc["k"] = None if req.k is None else int(req.k)
        doc["radius"] = None if req.radius is None else float(req.radius)
    else:  # pragma: no cover - future families must extend this
        raise InvalidRequestError(
            f"cannot serialize request family {req.family!r}"
        )
    return doc


def request_from_doc(doc: dict) -> Request:
    """Rebuild a request from its :func:`request_to_doc` wire doc.

    Docs without a ``family`` tag predate the neighbor family and parse
    as query requests.
    """
    from .bat.query import AttributeFilter  # local: avoids an import cycle

    common = dict(
        filters=tuple(
            AttributeFilter(name, lo, hi) for name, lo, hi in doc.get("filters", ())
        ),
        columns=(
            tuple(doc["columns"]) if doc.get("columns") is not None else None
        ),
        on_error=doc.get("on_error", "raise"),
    )
    family = doc.get("family", "query")
    if family == "query":
        box = doc.get("box")
        return QueryRequest(
            box=Box(tuple(box[0]), tuple(box[1])) if box is not None else None,
            quality=doc.get("quality", 1.0),
            prev_quality=doc.get("prev_quality", 0.0),
            engine=doc.get("engine", "frontier"),
            **common,
        )
    if family == "neighbor":
        cb = doc.get("center_box")
        pts = doc.get("points")
        return NeighborRequest(
            center_box=Box(tuple(cb[0]), tuple(cb[1])) if cb is not None else None,
            points=tuple(tuple(p) for p in pts) if pts is not None else None,
            k=doc.get("k"),
            radius=doc.get("radius"),
            engine=doc.get("engine", "tree"),
            **common,
        )
    raise InvalidRequestError(f"unknown request family {family!r} in doc")


@dataclass(frozen=True)
class StreamIncrement:
    """One quality rung of a streamed (progressive) read.

    ``batch`` holds the rows this rung adds on top of ``prev_quality``.
    ``order`` is an ``(N, 3)`` int64 array of per-row order keys
    ``(file_rank, treelet_rank, slot)``; rows within one increment are
    already ascending in their keys, and sorting the concatenation of a
    stream's increments by them reproduces the direct synchronous
    emission order byte for byte (see :func:`reassemble_stream`).
    ``order=None`` marks a pre-ordered increment — e.g. a one-shot
    synchronous result re-published as a single increment by the serve
    layer's request collapser.

    ``stats`` is the stream's *cumulative* work-counter object: every
    increment of one stream carries the same live
    :class:`~repro.bat.query.QueryStats`, which equals a direct query's
    counters once the final rung has been consumed. ``partial`` turns
    (and stays) True once a leaf file was quarantined mid-stream under
    ``on_error="degrade"``; partial streams are never cached or shared.
    """

    quality: float
    prev_quality: float
    batch: ParticleBatch
    order: np.ndarray | None = None
    stats: object = field(repr=False, default=None)
    partial: bool = False


def reassemble_stream(increments) -> QueryResult:
    """Fold streamed increments back into one :class:`QueryResult`.

    The inverse of :meth:`~repro.core.dataset.BATDataset.stream`: given
    every increment of one stream (in delivery order), returns a result
    byte-identical to the direct synchronous query at the final rung's
    quality. A *prefix* of a stream is also valid input — truncated
    streams reassemble to the direct query at the last consumed rung's
    quality, because increment slot ranges chain with no overlap and no
    gap.
    """
    incs = list(increments)
    if not incs:
        raise InvalidRequestError("cannot reassemble an empty stream")
    stats = incs[-1].stats
    keyed = [inc for inc in incs if inc.order is not None]
    if not keyed:
        # pre-ordered increments (the sync one-shot path): concatenation
        # in delivery order already is the direct order
        if len(incs) == 1:
            return QueryResult(batch=incs[0].batch, stats=stats)
        return QueryResult(
            batch=ParticleBatch.concatenate([inc.batch for inc in incs]), stats=stats
        )
    if len(keyed) != len(incs):
        raise InvalidRequestError(
            "cannot reassemble a mix of keyed and pre-ordered increments"
        )
    parts = [inc for inc in incs if len(inc.batch)]
    if not parts:
        return QueryResult(batch=incs[0].batch, stats=stats)
    if len(parts) == 1:
        # a single increment is already ascending in its order keys
        return QueryResult(batch=parts[0].batch, stats=stats)
    batch = ParticleBatch.concatenate([inc.batch for inc in parts])
    order = np.concatenate([inc.order for inc in parts], axis=0)
    perm = np.lexsort((order[:, 2], order[:, 1], order[:, 0]))
    return QueryResult(batch=batch.select(perm), stats=stats)


def open_dataset(path, *, executor=None, file_cache=None, plan_cache=None):
    """Open one written timestep for querying.

    The front door of the read API: returns a
    :class:`~repro.core.dataset.BATDataset` (usable as a context manager)
    whose :meth:`~repro.core.dataset.BATDataset.query` accepts a
    :class:`QueryRequest`. ``executor``, ``file_cache``, and
    ``plan_cache`` tune resource sharing exactly as the
    :class:`~repro.core.dataset.BATDataset` constructor does.
    """
    from .core.dataset import BATDataset

    return BATDataset(
        path, executor=executor, file_cache=file_cache, plan_cache=plan_cache
    )
