"""The unified query API: ``open_dataset`` + ``QueryRequest``/``QueryResult``.

Every read path — :meth:`~repro.core.dataset.BATDataset.query`, the serve
layer's request parsing, the ``repro query`` CLI — speaks one request
shape. A :class:`QueryRequest` captures *what* to read (box, filters,
quality window, columns, traversal engine, error policy) independently of
*where* it runs, so the same request object can be replayed against a
dataset, a time series, or the concurrent service and must produce
byte-identical data.

Typical use::

    import repro

    ds = repro.open_dataset("out/ts0000.meta.json")
    result = ds.query(repro.QueryRequest(quality=0.3, columns=("temp",)))
    print(len(result.batch), result.stats.files_opened)

The pre-1.x keyword signatures (``ds.query(quality=0.3, box=...)``) keep
working as thin shims that emit one :class:`DeprecationWarning` per call
form and return the old ``(batch, stats)`` tuple; :class:`QueryResult`
iterates as ``(batch, stats)`` too, so two-value unpacking works against
either form.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field

from .errors import InvalidRequestError
from .types import Box, ParticleBatch

__all__ = ["QueryRequest", "QueryResult", "open_dataset"]

#: legal ``on_error`` policies for corrupt/missing leaf files
ON_ERROR_POLICIES = ("raise", "degrade")

# one DeprecationWarning per distinct legacy call form, process-wide —
# a loop over the old signature must not flood the user's terminal
_warned_forms: set[str] = set()
_warn_lock = threading.Lock()


def warn_deprecated(form: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per distinct ``form``."""
    with _warn_lock:
        if form in _warned_forms:
            return
        _warned_forms.add(form)
    warnings.warn(
        f"{form} is deprecated; {replacement}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _reset_deprecation_warnings() -> None:
    """Forget which legacy forms already warned (test isolation hook)."""
    with _warn_lock:
        _warned_forms.clear()


@dataclass(frozen=True)
class QueryRequest:
    """One immutable description of a (progressive) read.

    ``quality``/``prev_quality`` bound the progressive increment: the
    request loads the data between the two quality levels, so
    ``QueryRequest(quality=0.7, prev_quality=0.3)`` is the refinement a
    viewer issues after already holding the 0.3 view. ``columns`` names
    the columns to materialize (``None`` means all); on a v4 file,
    unrequested columns are never even decoded. An explicit selection may
    include the pseudo-column ``"positions"``; leaving it out projects
    positions away too — the result batch then has ``positions=None`` and
    carries its row count in ``batch.count``, and on v4 files the
    position payload is only decoded where a box test needs it (so
    ``QueryRequest(columns=("temp",))`` decodes roughly just the ``temp``
    column). ``on_error``
    chooses what a corrupt or missing leaf file does: ``"raise"`` (the
    default) or ``"degrade"`` to quarantine it and return the partial
    result from the surviving files.

    Requests are hashable and comparable, so they key caches directly.
    """

    box: Box | None = None
    filters: tuple = ()
    quality: float = 1.0
    prev_quality: float = 0.0
    columns: tuple[str, ...] | None = None
    engine: str = "frontier"
    on_error: str = "raise"

    def __post_init__(self):
        object.__setattr__(self, "filters", tuple(self.filters))
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))
        # quality 0.0 is a valid (empty) read — progressive loops start there
        if not 0.0 <= self.quality <= 1.0:
            raise InvalidRequestError(
                f"quality must be in [0, 1], got {self.quality}"
            )
        if not 0.0 <= self.prev_quality <= self.quality:
            raise InvalidRequestError(
                f"prev_quality must be in [0, quality], got "
                f"{self.prev_quality} with quality {self.quality}"
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise InvalidRequestError("on_error must be 'raise' or 'degrade'")


@dataclass(frozen=True)
class QueryResult:
    """What one request returned: the batch plus traversal statistics.

    Iterates as ``(batch, stats)`` so existing two-value unpacking keeps
    working; ``batch`` is ``None`` for callback (streaming) queries,
    where the data was delivered chunk-by-chunk instead.
    """

    batch: ParticleBatch | None
    stats: object = field(repr=False, default=None)

    def __iter__(self):
        yield self.batch
        yield self.stats

    def __len__(self) -> int:
        return len(self.batch) if self.batch is not None else 0


def open_dataset(path, *, executor=None, file_cache=None, plan_cache=None):
    """Open one written timestep for querying.

    The front door of the read API: returns a
    :class:`~repro.core.dataset.BATDataset` (usable as a context manager)
    whose :meth:`~repro.core.dataset.BATDataset.query` accepts a
    :class:`QueryRequest`. ``executor``, ``file_cache``, and
    ``plan_cache`` tune resource sharing exactly as the
    :class:`~repro.core.dataset.BATDataset` constructor does.
    """
    from .core.dataset import BATDataset

    return BATDataset(
        path, executor=executor, file_cache=file_cache, plan_cache=plan_cache
    )
