"""The unified query API: ``open_dataset`` + ``QueryRequest``/``QueryResult``.

Every read path — :meth:`~repro.core.dataset.BATDataset.query`, the serve
layer's request parsing, the ``repro query`` CLI — speaks one request
shape. A :class:`QueryRequest` captures *what* to read (box, filters,
quality window, columns, traversal engine, error policy) independently of
*where* it runs, so the same request object can be replayed against a
dataset, a time series, or the concurrent service and must produce
byte-identical data.

Typical use::

    import repro

    ds = repro.open_dataset("out/ts0000.meta.json")
    result = ds.query(repro.QueryRequest(quality=0.3, columns=("temp",)))
    print(len(result.batch), result.stats.files_opened)

The pre-1.x keyword signatures (``ds.query(quality=0.3, box=...)``) keep
working as thin shims that emit one :class:`DeprecationWarning` per call
form and return the old ``(batch, stats)`` tuple; :class:`QueryResult`
iterates as ``(batch, stats)`` too, so two-value unpacking works against
either form.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field

import numpy as np

from .errors import InvalidRequestError
from .types import Box, ParticleBatch

__all__ = [
    "QueryRequest",
    "QueryResult",
    "StreamIncrement",
    "reassemble_stream",
    "open_dataset",
]

#: legal ``on_error`` policies for corrupt/missing leaf files
ON_ERROR_POLICIES = ("raise", "degrade")

# one DeprecationWarning per distinct legacy call form, process-wide —
# a loop over the old signature must not flood the user's terminal
_warned_forms: set[str] = set()
_warn_lock = threading.Lock()


def warn_deprecated(form: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` per distinct ``form``."""
    with _warn_lock:
        if form in _warned_forms:
            return
        _warned_forms.add(form)
    warnings.warn(
        f"{form} is deprecated; {replacement}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _reset_deprecation_warnings() -> None:
    """Forget which legacy forms already warned (test isolation hook)."""
    with _warn_lock:
        _warned_forms.clear()


@dataclass(frozen=True)
class QueryRequest:
    """One immutable description of a (progressive) read.

    ``quality``/``prev_quality`` bound the progressive increment: the
    request loads the data between the two quality levels, so
    ``QueryRequest(quality=0.7, prev_quality=0.3)`` is the refinement a
    viewer issues after already holding the 0.3 view. ``columns`` names
    the columns to materialize (``None`` means all); on a v4 file,
    unrequested columns are never even decoded. An explicit selection may
    include the pseudo-column ``"positions"``; leaving it out projects
    positions away too — the result batch then has ``positions=None`` and
    carries its row count in ``batch.count``, and on v4 files the
    position payload is only decoded where a box test needs it (so
    ``QueryRequest(columns=("temp",))`` decodes roughly just the ``temp``
    column). ``on_error``
    chooses what a corrupt or missing leaf file does: ``"raise"`` (the
    default) or ``"degrade"`` to quarantine it and return the partial
    result from the surviving files.

    Requests are hashable and comparable, so they key caches directly.
    """

    box: Box | None = None
    filters: tuple = ()
    quality: float = 1.0
    prev_quality: float = 0.0
    columns: tuple[str, ...] | None = None
    engine: str = "frontier"
    on_error: str = "raise"

    def __post_init__(self):
        object.__setattr__(self, "filters", tuple(self.filters))
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))
        # quality 0.0 is a valid (empty) read — progressive loops start there
        if not 0.0 <= self.quality <= 1.0:
            raise InvalidRequestError(
                f"quality must be in [0, 1], got {self.quality}"
            )
        if not 0.0 <= self.prev_quality <= self.quality:
            raise InvalidRequestError(
                f"prev_quality must be in [0, quality], got "
                f"{self.prev_quality} with quality {self.quality}"
            )
        if self.on_error not in ON_ERROR_POLICIES:
            raise InvalidRequestError("on_error must be 'raise' or 'degrade'")


@dataclass(frozen=True)
class QueryResult:
    """What one request returned: the batch plus traversal statistics.

    Iterates as ``(batch, stats)`` so existing two-value unpacking keeps
    working; ``batch`` is ``None`` for callback (streaming) queries,
    where the data was delivered chunk-by-chunk instead.
    """

    batch: ParticleBatch | None
    stats: object = field(repr=False, default=None)

    def __iter__(self):
        yield self.batch
        yield self.stats

    def __len__(self) -> int:
        return len(self.batch) if self.batch is not None else 0


@dataclass(frozen=True)
class StreamIncrement:
    """One quality rung of a streamed (progressive) read.

    ``batch`` holds the rows this rung adds on top of ``prev_quality``.
    ``order`` is an ``(N, 3)`` int64 array of per-row order keys
    ``(file_rank, treelet_rank, slot)``; rows within one increment are
    already ascending in their keys, and sorting the concatenation of a
    stream's increments by them reproduces the direct synchronous
    emission order byte for byte (see :func:`reassemble_stream`).
    ``order=None`` marks a pre-ordered increment — e.g. a one-shot
    synchronous result re-published as a single increment by the serve
    layer's request collapser.

    ``stats`` is the stream's *cumulative* work-counter object: every
    increment of one stream carries the same live
    :class:`~repro.bat.query.QueryStats`, which equals a direct query's
    counters once the final rung has been consumed. ``partial`` turns
    (and stays) True once a leaf file was quarantined mid-stream under
    ``on_error="degrade"``; partial streams are never cached or shared.
    """

    quality: float
    prev_quality: float
    batch: ParticleBatch
    order: np.ndarray | None = None
    stats: object = field(repr=False, default=None)
    partial: bool = False


def reassemble_stream(increments) -> QueryResult:
    """Fold streamed increments back into one :class:`QueryResult`.

    The inverse of :meth:`~repro.core.dataset.BATDataset.stream`: given
    every increment of one stream (in delivery order), returns a result
    byte-identical to the direct synchronous query at the final rung's
    quality. A *prefix* of a stream is also valid input — truncated
    streams reassemble to the direct query at the last consumed rung's
    quality, because increment slot ranges chain with no overlap and no
    gap.
    """
    incs = list(increments)
    if not incs:
        raise InvalidRequestError("cannot reassemble an empty stream")
    stats = incs[-1].stats
    keyed = [inc for inc in incs if inc.order is not None]
    if not keyed:
        # pre-ordered increments (the sync one-shot path): concatenation
        # in delivery order already is the direct order
        if len(incs) == 1:
            return QueryResult(batch=incs[0].batch, stats=stats)
        return QueryResult(
            batch=ParticleBatch.concatenate([inc.batch for inc in incs]), stats=stats
        )
    if len(keyed) != len(incs):
        raise InvalidRequestError(
            "cannot reassemble a mix of keyed and pre-ordered increments"
        )
    parts = [inc for inc in incs if len(inc.batch)]
    if not parts:
        return QueryResult(batch=incs[0].batch, stats=stats)
    if len(parts) == 1:
        # a single increment is already ascending in its order keys
        return QueryResult(batch=parts[0].batch, stats=stats)
    batch = ParticleBatch.concatenate([inc.batch for inc in parts])
    order = np.concatenate([inc.order for inc in parts], axis=0)
    perm = np.lexsort((order[:, 2], order[:, 1], order[:, 0]))
    return QueryResult(batch=batch.select(perm), stats=stats)


def open_dataset(path, *, executor=None, file_cache=None, plan_cache=None):
    """Open one written timestep for querying.

    The front door of the read API: returns a
    :class:`~repro.core.dataset.BATDataset` (usable as a context manager)
    whose :meth:`~repro.core.dataset.BATDataset.query` accepts a
    :class:`QueryRequest`. ``executor``, ``file_cache``, and
    ``plan_cache`` tune resource sharing exactly as the
    :class:`~repro.core.dataset.BATDataset` constructor does.
    """
    from .core.dataset import BATDataset

    return BATDataset(
        path, executor=executor, file_cache=file_cache, plan_cache=plan_cache
    )
