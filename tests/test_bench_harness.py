"""Tests for the benchmark harness and report formatting."""

import pytest

from repro.bench import (
    coal_boiler_series,
    dam_break_series,
    format_series,
    format_table,
    progressive_read_benchmark,
    timing_breakdown,
    two_phase_read_point,
    two_phase_write_point,
    weak_scaling,
)
from repro.core import TwoPhaseWriter
from repro.machines import stampede2
from repro.machines import testing_machine as make_test_machine
from repro.workloads import uniform_rank_data
from tests.test_pipeline import make_rank_data


class TestWeakScaling:
    def test_point_labels_and_values(self):
        pts = weak_scaling(stampede2(), [96], target_sizes=[8 << 20], ior_modes=["fpp"])
        labels = {p.label for p in pts}
        assert labels == {"ior-fpp", "two-phase-8MB"}
        for p in pts:
            assert p.write_bandwidth > 0
            assert p.read_bandwidth > 0
            assert p.total_bytes == pytest.approx(96 * 32768 * 124)

    def test_two_phase_wins_at_scale(self):
        pts = weak_scaling(
            stampede2(), [96, 6144], target_sizes=[64 << 20], ior_modes=["fpp", "shared"]
        )
        by = {(p.label, p.nranks): p for p in pts}
        # at scale, two-phase beats both references (the paper's headline)
        assert (
            by[("two-phase-64MB", 6144)].write_bandwidth
            > by[("ior-fpp", 6144)].write_bandwidth
        )
        assert (
            by[("two-phase-64MB", 6144)].write_bandwidth
            > by[("ior-shared", 6144)].write_bandwidth
        )
        # at small scale FPP is competitive (paper: "initially performs well")
        assert by[("ior-fpp", 96)].write_bandwidth > by[("two-phase-64MB", 96)].write_bandwidth


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        rows = timing_breakdown(stampede2(), [96, 384], 8 << 20)
        for row in rows:
            assert sum(row["fractions"].values()) == pytest.approx(1.0)
            assert row["elapsed"] > 0

    def test_major_components_present(self):
        rows = timing_breakdown(stampede2(), [384], 8 << 20)
        phases = rows[0]["phases"]
        # paper: bulk of time in writes, BAT construction, and transfer
        big3 = (
            phases["write files"]
            + phases["construct BAT"]
            + phases["transfer to aggregators"]
        )
        assert big3 / sum(phases.values()) > 0.5


class TestSeries:
    def test_coal_series_adaptive_wins(self):
        rows = coal_boiler_series(
            stampede2(),
            nranks=384,
            timesteps=(2501, 4501),
            target_sizes=(8 << 20,),
            sample_size=100_000,
        )
        by = {(r["timestep"], r["strategy"]): r for r in rows}
        for ts in (2501, 4501):
            assert (
                by[(ts, "adaptive")]["write_bandwidth"]
                >= by[(ts, "aug")]["write_bandwidth"] * 0.95
            )

    def test_dam_series_constant_totals(self):
        rows = dam_break_series(
            stampede2(),
            total_particles=500_000,
            nranks=384,
            timesteps=(0, 4001),
            target_sizes=(1 << 20,),
            sample_size=100_000,
        )
        totals = {r["total_particles"] for r in rows}
        assert max(totals) - min(totals) < 0.02 * 500_000


class TestProgressiveReadBenchmark:
    def test_real_measurement(self, tmp_path):
        data = make_rank_data(nranks=8, seed=5)
        rep = TwoPhaseWriter(make_test_machine(), target_size=256 * 1024).write(
            data, out_dir=tmp_path, name="bench"
        )
        result = progressive_read_benchmark(rep.metadata_path, steps=5)
        assert result["total_points"] == data.total_particles
        assert result["avg_read_ms"] > 0
        assert result["throughput_pts_per_ms"] > 0
        assert len(result["per_step_ms"]) == 5


class TestReadPoint:
    def test_read_after_write(self):
        data = uniform_rank_data(96)
        wrep = two_phase_write_point(stampede2(), data, 8 << 20)
        rrep = two_phase_read_point(stampede2(), wrep, data)
        assert rrep.bandwidth > 0

    def test_unknown_strategy(self):
        data = uniform_rank_data(8)
        with pytest.raises(ValueError):
            two_phase_write_point(stampede2(), data, 8 << 20, strategy="nope")


class TestReport:
    def test_format_table(self):
        txt = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "333" in txt

    def test_format_series_pivot(self):
        pts = [
            {"x": 1, "label": "s1", "y": 1e9},
            {"x": 1, "label": "s2", "y": 2e9},
            {"x": 2, "label": "s1", "y": 3e9},
        ]
        txt = format_series(pts, "x", "y")
        assert "s1" in txt and "s2" in txt
        assert "3.00" in txt
        assert txt.splitlines()[-1].count("-") >= 1 or "-" in txt  # missing cell
