"""Tests for streamed serving: outbox backpressure, request collapsing,
the asyncio front end, windowed metrics, and open-loop load.

The core invariant, stressed from every angle: whatever the collapse
table, the quality ladder, backpressure shedding, and the degradation
policy did to a request, the bytes a client ends up holding are exactly
the bytes a direct synchronous query at the same effective
``(prev_quality, quality)`` coordinates returns.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryRequest, reassemble_stream
from repro.api import StreamIncrement
from repro.bat import AttributeFilter
from repro.bat.colcache import DecodedColumnCache
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine
from repro.serve import (
    AsyncQueryService,
    CollapseAbandoned,
    CollapseKey,
    InflightTable,
    QueryService,
    ServeConfig,
    ServeMetrics,
    StreamOutbox,
    make_hot_traces,
    make_traces,
    run_load,
    run_load_async,
    verify_identity_samples,
)
from repro.serve.collapse import _DONE, adapt_increment, _compatible, FollowSpec, InflightEntry
from repro.serve.metrics import RequestSpan
from repro.serve.scheduler import RequestScheduler, SchedulerConfig
from repro.serve.streaming import DONE, EMPTY
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

BOX = Box((0.5, 0.5, 0.1), (3.0, 3.0, 0.8))
FILT = (AttributeFilter("mass", 0.2, 0.8),)


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=9, seed=21)
    out = tmp_path_factory.mktemp("serve_stream")
    report = TwoPhaseWriter(testing_machine(), target_size=128 * 1024).write(
        data, out_dir=out, name="ss"
    )
    return report.metadata_path


@pytest.fixture(scope="module")
def direct(written):
    with BATDataset(written) as ds:
        yield ds


def canon(batch):
    out = [None if batch.positions is None else batch.positions.tobytes()]
    for k, v in batch.attributes.items():
        out.append((k, str(v.dtype), v.tobytes()))
    return out


# ---------------------------------------------------------------------------
# stream outbox


class TestStreamOutbox:
    def test_fifo_and_done(self):
        box = StreamOutbox(4)
        for i in range(3):
            assert box.push(i, grace=None)
        box.finish()
        assert [box.pop(1.0) for _ in range(3)] == [0, 1, 2]
        assert box.pop(1.0) is DONE

    def test_bounded_push_sheds_after_grace(self):
        box = StreamOutbox(1)
        assert box.push("a", grace=0.01)
        t0 = time.perf_counter()
        assert not box.push("b", grace=0.05)  # full, consumer absent
        assert time.perf_counter() - t0 >= 0.04
        assert box.blocked_pushes == 1

    def test_consumer_unblocks_producer(self):
        box = StreamOutbox(1)
        box.push("a", grace=None)
        got = []

        def consume():
            time.sleep(0.02)
            got.append(box.pop(5.0))

        t = threading.Thread(target=consume)
        t.start()
        assert box.push("b", grace=5.0)
        t.join()
        assert got == ["a"]

    def test_abandon_fails_pushes_immediately(self):
        box = StreamOutbox(1)
        box.abandon()
        assert not box.push("x", grace=None)

    def test_error_reraised_after_drain(self):
        box = StreamOutbox(4)
        box.push("a", grace=None)
        box.finish(error=RuntimeError("boom"))
        assert box.pop(1.0) == "a"
        with pytest.raises(RuntimeError, match="boom"):
            box.pop(1.0)

    def test_try_pop_sentinels(self):
        box = StreamOutbox(2)
        assert box.try_pop() is EMPTY
        box.push("a", grace=None)
        assert box.try_pop() == "a"
        box.finish()
        assert box.try_pop() is DONE

    def test_on_event_fires_for_push_and_finish(self):
        events = []
        box = StreamOutbox(2, on_event=lambda: events.append(1))
        box.push("a", grace=None)
        box.finish()
        assert len(events) == 2


class TestTicketCallbacks:
    def test_callback_after_completion_and_immediate_when_done(self):
        fired = []
        with RequestScheduler(SchedulerConfig(capacity=1)) as sched:
            t = sched.submit(lambda t: 42)
            t.result(5.0)
            t.add_done_callback(lambda tk: fired.append(tk.result(0)))
            t2 = sched.submit(lambda t: 7)
            t2.add_done_callback(lambda tk: fired.append(tk.result(0)))
            t2.result(5.0)
        assert sorted(fired) == [7, 42]

    def test_finished_at_stamped(self):
        with RequestScheduler(SchedulerConfig(capacity=1)) as sched:
            t = sched.submit(lambda t: time.sleep(0.01))
            t.result(5.0)
        assert t.finished_at >= t.started_at >= t.enqueued_at > 0


# ---------------------------------------------------------------------------
# collapse table (unit)


def _inc(batch, quality=1.0, prev=0.0, order="keys"):
    if order == "keys":
        order = np.zeros((len(batch), 3), dtype=np.int64)
        order[:, 2] = np.arange(len(batch))
    return StreamIncrement(quality=quality, prev_quality=prev, batch=batch, order=order)


def _batch(n=8, names=("mass", "temp")):
    rng = np.random.default_rng(0)
    pos = rng.random((n, 3)).astype(np.float32)
    return ParticleBatch(pos, {nm: rng.random(n) for nm in names})


def _key(**kw):
    base = dict(
        step=0, box=None, filters=(), prev_quality=0.0, quality=1.0,
        columns=None, engine="frontier",
    )
    base.update(kw)
    return CollapseKey(**base)


class TestInflightTable:
    def test_leader_then_exact_follower(self):
        table = InflightTable()
        entry, spec = table.acquire(_key(), (1.0,))
        assert spec is None
        e2, spec2 = table.acquire(_key(), (1.0,))
        assert e2 is entry and spec2 is not None and spec2.is_identity
        table.release(entry)
        s = table.stats()
        assert s["leaders"] == 1 and s["collapsed_hits"] == 1 and s["entries"] == 0

    def test_released_entry_not_joinable(self):
        table = InflightTable()
        entry, _ = table.acquire(_key(), (1.0,))
        table.release(entry)
        e2, spec = table.acquire(_key(), (1.0,))
        assert e2 is not entry and spec is None

    def test_derived_filter_superset(self):
        entry = InflightEntry(_key(), (1.0,))
        spec = _compatible(entry, _key(filters=FILT))
        assert spec is not None and spec.extra_filters == FILT

    def test_derived_column_subset(self):
        entry = InflightEntry(_key(), (1.0,))
        spec = _compatible(entry, _key(columns=("mass",)))
        assert spec is not None and spec.columns == ("mass",)

    def test_derived_rung_truncation(self):
        entry = InflightEntry(_key(), (0.25, 0.5, 1.0))
        spec = _compatible(entry, _key(quality=0.5))
        assert spec is not None and spec.stop_quality == 0.5
        assert _compatible(entry, _key(quality=0.3)) is None  # not a rung

    def test_incompatible_prev_box_engine(self):
        entry = InflightEntry(_key(), (1.0,))
        assert _compatible(entry, _key(prev_quality=0.5)) is None
        assert _compatible(entry, _key(box=BOX)) is None
        assert _compatible(entry, _key(engine="treelet")) is None

    def test_narrow_leader_cannot_serve_wider_follower(self):
        entry = InflightEntry(_key(columns=("mass",)), (1.0,))
        assert _compatible(entry, _key()) is None
        assert _compatible(entry, _key(columns=("mass", "temp"))) is None
        # extra filter on a column the leader did not materialize
        tfilt = (AttributeFilter("temp", 0.1, 0.9),)
        assert _compatible(entry, _key(columns=("mass",), filters=tfilt)) is None
        # ... but a filter over a column the leader does carry is fine
        assert _compatible(entry, _key(columns=("mass",), filters=FILT)) is not None

    def test_follower_consumes_published_stream(self):
        table = InflightTable()
        entry, _ = table.acquire(_key(), (0.5, 1.0))
        b = _batch()
        got = []

        def follower():
            i = 0
            while True:
                inc = entry.fetch(i, timeout=5.0)
                if inc is _DONE:
                    return
                got.append(inc)
                i += 1

        t = threading.Thread(target=follower)
        t.start()
        entry.publish(_inc(b, quality=0.5))
        entry.publish(_inc(b, quality=1.0, prev=0.5))
        entry.finish()
        t.join(5.0)
        assert [g.quality for g in got] == [0.5, 1.0]

    def test_partial_publish_abandons_followers(self):
        entry = InflightEntry(_key(), (1.0,))
        entry.publish(
            StreamIncrement(
                quality=1.0, prev_quality=0.0, batch=_batch(), order=None, partial=True
            )
        )
        with pytest.raises(CollapseAbandoned):
            entry.fetch(0, timeout=0.1)

    def test_fetch_timeout_raises(self):
        entry = InflightEntry(_key(), (1.0,))
        with pytest.raises(CollapseAbandoned):
            entry.fetch(0, timeout=0.01)


class TestAdaptIncrement:
    def test_identity_shares_increment(self):
        inc = _inc(_batch())
        assert adapt_increment(inc, FollowSpec()) is inc

    def test_extra_filter_masks_rows_and_order(self):
        b = _batch(16)
        inc = _inc(b)
        lo, hi = 0.3, 0.7
        spec = FollowSpec(extra_filters=(AttributeFilter("mass", lo, hi),))
        out = adapt_increment(inc, spec)
        mask = (b.attributes["mass"] >= lo) & (b.attributes["mass"] <= hi)
        assert np.array_equal(out.batch.attributes["mass"], b.attributes["mass"][mask])
        assert np.array_equal(out.order, inc.order[mask])

    def test_column_projection_preserves_attr_order(self):
        b = _batch(8, names=("a", "b", "c"))
        out = adapt_increment(_inc(b), FollowSpec(columns=("c", "a")))
        assert list(out.batch.attributes) == ["a", "c"]  # file order kept
        assert out.batch.positions is None
        out2 = adapt_increment(_inc(b), FollowSpec(columns=("a", "positions")))
        assert out2.batch.positions is not None


# ---------------------------------------------------------------------------
# service streaming


def serve_config(**kw):
    base = dict(capacity=2, result_ttl=None)
    base.update(kw)
    return ServeConfig(**base)


class TestServiceStreaming:
    def test_stream_equals_direct_and_refines(self, written, direct):
        with QueryService(written, serve_config()) as svc:
            sid = svc.open_session()
            handle = svc.stream(sid, QueryRequest(quality=0.8))
            incs = list(handle)
            resp = handle.result(30.0)
            ref = direct.query(QueryRequest(quality=0.8))
            assert len(incs) > 1
            assert canon(resp.batch) == canon(ref.batch)
            assert canon(reassemble_stream(incs).batch) == canon(ref.batch)
            assert resp.increments == len(incs)
            assert resp.span.first_increment_seconds > 0
            # refinement streams only the (0.8, 1.0] window
            h2 = svc.stream(sid, QueryRequest(quality=1.0))
            incs2 = list(h2)
            resp2 = h2.result(30.0)
            ref2 = direct.query(QueryRequest(quality=1.0, prev_quality=0.8))
            assert canon(resp2.batch) == canon(ref2.batch)
            assert canon(reassemble_stream(incs + incs2).batch) == canon(
                direct.query(QueryRequest(quality=1.0)).batch
            )

    def test_slow_consumer_sheds_prefix_exact(self, written, direct):
        cfg = serve_config(stream_outbox=1, stream_grace=0.05)
        with QueryService(written, cfg) as svc:
            sid = svc.open_session()
            handle = svc.stream(sid, QueryRequest(quality=1.0))
            incs = []
            for inc in handle:
                incs.append(inc)
                time.sleep(0.15)  # slower than the grace period
            resp = handle.result(30.0)
            assert resp.shed
            assert resp.served_quality < 1.0
            ref = direct.query(QueryRequest(quality=resp.served_quality))
            assert canon(resp.batch) == canon(ref.batch)
            assert svc.session(sid).delivered_quality == resp.served_quality
            # the session converges: the next request covers the rest
            r2 = svc.request(sid, QueryRequest(quality=1.0), timeout=60.0)
            ref2 = direct.query(
                QueryRequest(quality=r2.served_quality, prev_quality=resp.served_quality)
            )
            assert canon(r2.batch) == canon(ref2.batch)

    def test_closed_handle_sheds(self, written):
        cfg = serve_config(stream_outbox=1, stream_grace=0.05)
        with QueryService(written, cfg) as svc:
            sid = svc.open_session()
            with svc.stream(sid, QueryRequest(quality=1.0)) as handle:
                pass  # context exit closes without consuming
            resp = handle.result(30.0)
            assert resp.shed or resp.increments > 0

    def test_streamed_cache_hit_single_increment(self, written):
        with QueryService(written, serve_config()) as svc:
            s1 = svc.open_session()
            svc.request(s1, QueryRequest(quality=0.5), timeout=60.0)
            s2 = svc.open_session()
            handle = svc.stream(s2, QueryRequest(quality=0.5))
            incs = list(handle)
            resp = handle.result(30.0)
            assert resp.cache_hit and len(incs) == 1 and incs[0].order is None

    def test_snapshot_has_collapse_and_streaming_surfaces(self, written):
        with QueryService(written, serve_config()) as svc:
            sid = svc.open_session()
            h = svc.stream(sid, QueryRequest(quality=0.6))
            list(h)
            h.result(30.0)
            snap = svc.snapshot()
            assert {"entries", "subscribers", "leaders", "collapsed_hits",
                    "derived_hits", "fallbacks", "saved_decodes", "saved_points",
                    "saved_bytes", "hit_rate"} <= set(snap["caches"]["collapse"])
            assert snap["streaming"]["streamed"] == 1
            assert snap["streaming"]["increments"] >= 1
            assert snap["streaming"]["ttfi_ms"]["p50"] > 0
            assert snap["latency_ms"]["window"] == svc.config.metrics_window


class TestServiceCollapse:
    def test_thundering_herd_collapses_byte_exact(self, written, direct):
        cfg = serve_config(capacity=4, result_cache_entries=1)
        with QueryService(written, cfg) as svc:
            sids = [svc.open_session() for _ in range(6)]
            barrier = threading.Barrier(6)
            results = {}

            def worker(i, sid):
                barrier.wait()
                flt = FILT if i >= 4 else ()
                results[i] = svc.request(
                    sid, QueryRequest(quality=1.0, filters=flt), timeout=60.0
                )

            threads = [
                threading.Thread(target=worker, args=(i, s))
                for i, s in enumerate(sids)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, resp in results.items():
                flt = FILT if i >= 4 else ()
                ref = direct.query(
                    QueryRequest(quality=resp.served_quality, filters=flt)
                )
                assert canon(resp.batch) == canon(ref.batch), f"request {i}"
            stats = svc.collapse.stats()
            assert stats["leaders"] >= 1
            assert stats["fallbacks"] == 0

    def test_collapse_disabled_never_joins(self, written):
        cfg = serve_config(capacity=4, collapse=False, result_cache_entries=1)
        with QueryService(written, cfg) as svc:
            sids = [svc.open_session() for _ in range(4)]
            tickets = [
                svc.submit(sid, QueryRequest(quality=1.0)) for sid in sids
            ]
            for t in tickets:
                t.result(60.0)
            s = svc.collapse.stats()
            assert s["leaders"] == 0 and s["collapsed_hits"] == 0

    @SETTINGS
    @given(data=st.data())
    def test_random_session_mixes_stay_byte_identical(self, written, direct, data):
        """Randomized zoom/pan/filter/column mixes, streamed and one-shot,
        with collapsing and aggressive degradation: every response equals
        the direct query at its served coordinates, and a session's
        accumulated increments reassemble to the full-quality bytes."""
        n_sessions = data.draw(st.integers(2, 4))
        cfg = serve_config(capacity=2, result_cache_entries=8)
        boxes = [None, BOX, Box((0.0, 0.0, 0.0), (2.0, 2.0, 1.0))]
        with QueryService(written, cfg) as svc:
            plans = []
            for _ in range(n_sessions):
                ops = []
                for _ in range(data.draw(st.integers(1, 3))):
                    ops.append(
                        dict(
                            quality=data.draw(
                                st.sampled_from([0.2, 0.5, 0.8, 1.0])
                            ),
                            box=data.draw(st.sampled_from(boxes)),
                            filters=data.draw(st.sampled_from([(), FILT])),
                            columns=data.draw(
                                st.sampled_from(
                                    [None, ("mass", "positions")]
                                )
                            ),
                            streamed=data.draw(st.booleans()),
                        )
                    )
                plans.append(ops)
            observed = []
            lock = threading.Lock()

            def client(ops):
                sid = svc.open_session()
                try:
                    for op in ops:
                        req = QueryRequest(
                            quality=op["quality"], box=op["box"],
                            filters=op["filters"], columns=op["columns"],
                        )
                        if op["streamed"]:
                            h = svc.stream(sid, req)
                            incs = list(h)
                            resp = h.result(60.0)
                            with lock:
                                if incs:
                                    observed.append(
                                        (req, resp, reassemble_stream(incs).batch)
                                    )
                                else:
                                    observed.append((req, resp, None))
                        else:
                            resp = svc.request(sid, req, timeout=60.0)
                            with lock:
                                observed.append((req, resp, None))
                finally:
                    svc.close_session(sid)

            threads = [
                threading.Thread(target=client, args=(ops,)) for ops in plans
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for req, resp, reassembled in observed:
            if resp.partial:
                continue
            ref = direct.query(
                QueryRequest(
                    quality=resp.served_quality,
                    prev_quality=resp.prev_quality,
                    box=req.box,
                    filters=req.filters,
                    columns=req.columns,
                )
            )
            assert canon(resp.batch) == canon(ref.batch)
            if reassembled is not None:
                assert canon(reassembled) == canon(ref.batch)


# ---------------------------------------------------------------------------
# asyncio front end


class TestAsyncService:
    def test_async_request_matches_sync(self, written, direct):
        import asyncio

        async def main():
            async with AsyncQueryService(written, serve_config()) as asvc:
                sid = asvc.open_session()
                resp = await asvc.request(sid, QueryRequest(quality=0.7))
                return resp

        resp = asyncio.run(main())
        ref = direct.query(QueryRequest(quality=resp.served_quality))
        assert canon(resp.batch) == canon(ref.batch)

    def test_async_stream_increments_and_result(self, written, direct):
        import asyncio

        async def main():
            async with AsyncQueryService(written, serve_config()) as asvc:
                sid = asvc.open_session()
                stream = asvc.stream(sid, QueryRequest(quality=0.9))
                incs = [inc async for inc in stream]
                resp = await stream.result()
                return incs, resp

        incs, resp = asyncio.run(main())
        assert len(incs) > 1 and resp.increments == len(incs)
        ref = direct.query(QueryRequest(quality=resp.served_quality))
        assert canon(reassemble_stream(incs).batch) == canon(ref.batch)

    def test_run_load_async_hot_views_collapse_and_verify(self, written, direct):
        cfg = serve_config(capacity=4, max_queued=256)
        with QueryService(written, cfg) as svc:
            traces = make_hot_traces(
                12, direct.bounds, n_views=2, ops_per_session=4, seed=7
            )
            report = run_load_async(svc, traces, identity_sample_every=3)
            assert report.requests == 12 * 4
            assert report.increments > report.requests - report.rejected
            assert verify_identity_samples(direct, report.identity_samples) > 0


# ---------------------------------------------------------------------------
# metrics window


class TestMetricsWindow:
    def test_percentiles_cover_only_the_window(self):
        m = ServeMetrics(window=4)
        for i in range(10):
            span = RequestSpan(session_id=0, seq=i, requested_quality=1.0)
            span.total_seconds = float(i)
            m.record(span)
        snap = m.snapshot()
        assert snap["requests"]["completed"] == 10
        assert snap["latency_ms"]["window_count"] == 4
        # window holds 6..9 seconds
        assert snap["latency_ms"]["p50"] >= 6000.0
        assert snap["latency_ms"]["max"] == 9000.0
        # cumulative aggregates still see everything
        assert snap["latency_ms"]["max_all"] == 9000.0
        assert snap["latency_ms"]["mean_all"] == pytest.approx(4500.0)

    def test_memory_is_bounded(self):
        m = ServeMetrics(window=8)
        for i in range(1000):
            span = RequestSpan(session_id=0, seq=i, requested_quality=1.0)
            span.total_seconds = 0.001
            span.first_increment_seconds = 0.0005
            span.streamed = True
            m.record(span)
        assert len(m._latencies) == 8 and len(m._ttfi) == 8
        assert m.completed == 1000

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ServeMetrics(window=0)


# ---------------------------------------------------------------------------
# open-loop load


class TestOpenLoopLoad:
    def test_open_loop_deterministic_and_verified(self, written, direct):
        from repro.serve import DegradationConfig

        reports = []
        for _ in range(2):
            # degradation is load-dependent by design; determinism across
            # runs only holds with it off
            cfg = serve_config(
                capacity=2, max_queued=256,
                degradation=DegradationConfig(enabled=False),
            )
            with QueryService(written, cfg) as svc:
                traces = make_traces(
                    6, direct.bounds,
                    direct.attr_ranges, ops_per_session=3, seed=3,
                )
                reports.append(
                    run_load(
                        svc, traces, concurrency=1, arrival="open",
                        rate_hz=400.0, arrival_seed=11, identity_sample_every=3,
                    )
                )
        a, b = reports
        assert a.requests == b.requests == 18
        # the schedule and the served bytes are seed-deterministic even
        # though actual timings differ run to run
        assert sorted(s[-1] for s in a.identity_samples) == sorted(
            s[-1] for s in b.identity_samples
        )
        assert verify_identity_samples(direct, a.identity_samples) > 0

    def test_bad_arrival_mode_rejected(self, written):
        with QueryService(written, serve_config()) as svc:
            with pytest.raises(ValueError, match="arrival"):
                run_load(svc, [], concurrency=1, arrival="sideways")


# ---------------------------------------------------------------------------
# decoded-column cache under contention


class TestColumnCacheStress:
    def test_counters_pure_and_budget_never_exceeded_mid_race(self):
        rng = np.random.default_rng(0)
        budget = 64 * 1024
        cache = DecodedColumnCache(budget)
        arrays = [rng.random(rng.integers(64, 1024)) for _ in range(64)]
        stop = threading.Event()
        over_budget = []
        gets = [0] * 4

        def sampler():
            while not stop.is_set():
                if cache.nbytes > budget:
                    over_budget.append(cache.nbytes)

        def hammer(tid):
            r = np.random.default_rng(tid)
            for i in range(400):
                k = int(r.integers(0, 64))
                op = int(r.integers(0, 10))
                if op < 4:
                    cache.get(f"f{k % 4}", k, 0)
                    gets[tid] += 1
                elif op < 8:
                    cache.put(f"f{k % 4}", k, 0, arrays[k])
                elif op == 8:
                    cache.peek(f"f{k % 4}", k, 0)  # never counts
                else:
                    cache.invalidate(f"f{k % 4}")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        s = threading.Thread(target=sampler)
        s.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        s.join()
        assert not over_budget, f"budget exceeded mid-race: {over_budget[:3]}"
        stats = cache.stats()
        # counter purity: every get is exactly one hit or one miss; peek
        # and invalidate moved neither counter
        assert stats["hits"] + stats["misses"] == sum(gets)
        # the bookkept byte total equals the entries actually present
        assert cache.nbytes == sum(
            arr.nbytes
            for (key, arr) in cache._entries.items()
        )
        assert cache.nbytes <= budget


# ---------------------------------------------------------------------------
# graceful shutdown under load


class TestShutdownUnderLoad:
    def test_cancel_close_bounded_with_undrained_streams(self, written):
        """close(cancel=True) must return promptly even while streams are
        in flight and nobody is consuming their outboxes: live outboxes
        are abandoned (workers shed at the next rung boundary), queued
        tickets cancel, and every consumer's next pop resolves."""
        svc = QueryService(
            written,
            serve_config(capacity=2, stream_outbox=1, stream_grace=30.0),
        )
        sids = [svc.open_session() for _ in range(4)]
        handles = [
            svc.stream(sid, QueryRequest(quality=1.0, box=BOX)) for sid in sids
        ]
        # let at least one worker start publishing into a full outbox
        time.sleep(0.05)
        t0 = time.perf_counter()
        svc.close(cancel=True)
        # far below the 30s grace: abandonment, not the grace timer
        assert time.perf_counter() - t0 < 10.0
        from repro.serve import SchedulerClosed

        for handle in handles:
            while True:  # every outbox resolves; nothing hangs
                try:
                    item = handle.outbox.try_pop()
                except SchedulerClosed:
                    break  # a cancelled ticket surfaces as the close error
                if item is DONE or item is EMPTY:
                    break
        assert not svc._live_outboxes

    def test_drain_close_completes_inflight_results(self, written):
        """Default close drains: submitted work still yields full results."""
        svc = QueryService(written, serve_config(capacity=2))
        sid = svc.open_session()
        tickets = [
            svc.submit(sid, QueryRequest(quality=q, box=BOX))
            for q in (0.3, 0.6, 1.0)
        ]
        svc.close()
        total = sum(len(t.result(0.0).batch) for t in tickets)
        assert total > 0  # the progressive windows all materialized

    def test_drain_close_finishes_stream_outboxes(self, written):
        svc = QueryService(written, serve_config(capacity=1))
        sid = svc.open_session()
        handle = svc.stream(sid, QueryRequest(quality=0.8, box=BOX))
        svc.close()
        # the stream was fully published and finished; drain to DONE
        seen = 0
        while True:
            item = handle.outbox.pop(5.0)
            if item is DONE:
                break
            seen += 1
        assert seen >= 1
        assert not svc._live_outboxes

    def test_close_idempotent_and_rejects_new_streams(self, written):
        from repro.serve import SchedulerClosed

        svc = QueryService(written, serve_config())
        sid = svc.open_session()
        svc.close()
        svc.close(cancel=True)  # second close is a no-op, not an error
        with pytest.raises(SchedulerClosed):
            svc.stream(sid, QueryRequest(quality=0.5, box=BOX))

    def test_async_aclose_cancel_under_load(self, written):
        async def main():
            svc = AsyncQueryService(written, serve_config(capacity=2, stream_outbox=1))
            streams = []
            for _ in range(3):
                sid = svc.open_session()
                streams.append(svc.stream(sid, QueryRequest(quality=1.0, box=BOX)))
            await svc.aclose(cancel=True)
            from repro.serve import SchedulerClosed

            for stream in streams:
                # consuming a cancelled stream terminates (cleanly or
                # with the close error) — it never hangs
                try:
                    async for _inc in stream:
                        pass
                except SchedulerClosed:
                    pass

        import asyncio

        asyncio.run(asyncio.wait_for(main(), timeout=60.0))


# ---------------------------------------------------------------------------
# strictly-JSON snapshots


class TestSnapshotStrictJson:
    def test_snapshot_json_dumps_strict_after_traffic(self, written):
        import json

        svc = QueryService(written, serve_config())
        try:
            sid = svc.open_session()
            for q in (0.3, 1.0):
                svc.request(sid, QueryRequest(quality=q, box=BOX, filters=FILT))
            svc.request(sid, QueryRequest(quality=1.0, box=BOX, filters=FILT))
            handle = svc.stream(sid, QueryRequest(quality=1.0))
            while handle.outbox.pop(30.0) is not DONE:
                pass
            svc.close_session(sid)
            snap = svc.snapshot()
        finally:
            svc.close()
        # allow_nan=False is the strict-JSON regression: no numpy
        # scalars, no tuple keys, no NaN/Inf anywhere in the document
        text = json.dumps(snap, allow_nan=False)
        assert json.loads(text) == snap

    def test_json_sanitize_numpy_and_tuple_keys(self):
        import json

        from repro.serve import json_sanitize

        doc = {
            ("a", 1): np.float64(0.5),
            2: np.int32(7),
            "arr": np.arange(3, dtype=np.int64),
            "nan": float("nan"),
            "inf": np.float32("inf"),
            "path": __import__("pathlib").Path("/x/y"),
            "set": {np.int64(3), np.int64(1)},
            "nested": [{"k": np.bool_(True)}],
        }
        out = json_sanitize(doc)
        text = json.dumps(out, allow_nan=False)
        back = json.loads(text)
        assert back["a/1"] == 0.5
        assert back["2"] == 7
        assert back["arr"] == [0, 1, 2]
        assert back["nan"] is None and back["inf"] is None
        assert back["path"] == "/x/y"
        assert back["set"] == [1, 3]
        assert back["nested"][0]["k"] is True
