"""Frontier vs recursive traversal: byte-identity on randomized workloads.

The vectorized frontier engine must be indistinguishable from the
recursive reference — same bytes, same result-facing stats — for any
combination of box, filters, and (progressive) quality levels. Hypothesis
drives the combinations; the dataset-level tests add the query planner on
top and check the progressive-read contract q1 → q2 == direct q2.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bat import AttributeFilter, BATFile, build_bat
from repro.bat.builder import BATBuildConfig
from repro.bat.query import ENGINES, query_file
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine as make_test_machine
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data

N = 40_000

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(11)
    pos = rng.random((N, 3)).astype(np.float32)
    pos[: N // 4] = rng.normal([0.7, 0.3, 0.5], 0.04, (N // 4, 3)).astype(np.float32)
    return ParticleBatch(pos, {"density": rng.random(N), "vel": rng.normal(0, 5, N)})


@pytest.fixture(scope="module")
def bat(batch, tmp_path_factory):
    path = tmp_path_factory.mktemp("eng") / "plain.bat"
    build_bat(batch).write(path)
    with BATFile(path) as f:
        yield f


@pytest.fixture(scope="module")
def bat_qz(batch, tmp_path_factory):
    """Quantized + compressed variant: exercises the decode path."""
    path = tmp_path_factory.mktemp("engqz") / "qz.bat"
    cfg = BATBuildConfig(quantize_positions=True, compress=True)
    build_bat(batch, cfg).write(path)
    with BATFile(path) as f:
        yield f


def boxes():
    coords = st.floats(0.0, 1.0, allow_nan=False, width=32)
    corner = st.tuples(coords, coords, coords)
    return st.one_of(
        st.none(),
        st.builds(
            lambda a, b: Box(tuple(map(min, a, b)), tuple(map(max, a, b))), corner, corner
        ),
    )


def filter_sets():
    lohi = st.tuples(st.floats(0.0, 1.0, width=32), st.floats(0.0, 1.0, width=32))
    density = lohi.map(lambda t: AttributeFilter("density", min(t), max(t)))
    vel = lohi.map(lambda t: AttributeFilter("vel", min(t) * 20 - 10, max(t) * 20 - 10))
    return st.lists(st.one_of(density, vel), max_size=2).map(tuple)


def quality_pairs():
    pair = st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    return pair.map(lambda t: (min(t), max(t)))


def assert_same_result(r1, s1, r2, s2):
    assert r1.positions.tobytes() == r2.positions.tobytes()
    assert list(r1.attributes) == list(r2.attributes)
    for name in r1.attributes:
        assert r1.attributes[name].tobytes() == r2.attributes[name].tobytes()
    assert s1.points_returned == s2.points_returned
    assert s1.points_tested == s2.points_tested
    assert s1.treelets_visited == s2.treelets_visited


def run_both(f, **kw):
    r1, s1 = query_file(f, engine="recursive", **kw)
    r2, s2 = query_file(f, engine="frontier", **kw)
    assert_same_result(r1, s1, r2, s2)
    return r2, s2


class TestEngineEquality:
    @SETTINGS
    @given(box=boxes(), filters=filter_sets(), qs=quality_pairs())
    def test_file_level_byte_identity(self, bat, box, filters, qs):
        q0, q1 = qs
        run_both(bat, quality=q1, prev_quality=q0, box=box, filters=filters)

    @SETTINGS
    @given(box=boxes(), filters=filter_sets(), qs=quality_pairs())
    def test_quantized_compressed_byte_identity(self, bat_qz, box, filters, qs):
        q0, q1 = qs
        run_both(bat_qz, quality=q1, prev_quality=q0, box=box, filters=filters)

    def test_full_read(self, bat):
        res, stats = run_both(bat)
        assert len(res) == N
        assert stats.points_returned == N

    def test_attribute_subset(self, bat):
        res, _ = run_both(bat, attributes=["vel"], box=Box((0, 0, 0), (0.5, 1, 1)))
        assert list(res.attributes) == ["vel"]

    def test_callback_chunks_reassemble_identically(self, bat):
        box = Box((0.2, 0.1, 0.0), (0.9, 0.8, 0.7))
        out = {}
        for engine in ENGINES:
            chunks = []
            query_file(
                bat, quality=0.8, box=box,
                filters=(AttributeFilter("density", 0.1, 0.7),),
                callback=lambda p, a: chunks.append((p, a)), engine=engine,
            )
            pos = np.concatenate([p for p, _ in chunks]) if chunks else np.empty((0, 3))
            den = np.concatenate([a["density"] for _, a in chunks]) if chunks else np.empty(0)
            out[engine] = (pos.tobytes(), den.tobytes())
        assert out["frontier"] == out["recursive"]

    def test_unknown_engine_rejected(self, bat):
        with pytest.raises(ValueError, match="engine"):
            query_file(bat, engine="warp")


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    data = make_rank_data(nranks=16, seed=3)
    out = tmp_path_factory.mktemp("engds")
    writer = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024)
    report = writer.write(data, out_dir=out, name="eng")
    with BATDataset(report.metadata_path) as ds:
        yield ds


def dataset_boxes():
    xy = st.floats(0.0, 4.0, width=32)
    z = st.floats(0.0, 1.0, width=32)
    corner = st.tuples(xy, xy, z)
    return st.one_of(
        st.none(),
        st.builds(
            lambda a, b: Box(tuple(map(min, a, b)), tuple(map(max, a, b))), corner, corner
        ),
    )


def dataset_filters():
    lohi = st.tuples(st.floats(0.0, 1.0, width=32), st.floats(0.0, 1.0, width=32))
    return st.lists(
        lohi.map(lambda t: AttributeFilter("mass", min(t), max(t))), max_size=1
    ).map(tuple)


def canonical(batch):
    """Multiset key of a batch: rows sorted by every column."""
    cols = [batch.positions[:, i] for i in range(3)]
    cols += [batch.attributes[k] for k in sorted(batch.attributes)]
    order = np.lexsort(cols)
    return tuple(np.ascontiguousarray(c[order]).tobytes() for c in cols)


class TestDatasetLevel:
    @SETTINGS
    @given(box=dataset_boxes(), filters=dataset_filters(), qs=quality_pairs())
    def test_planned_query_matches_recursive(self, dataset, box, filters, qs):
        q0, q1 = qs
        b1, s1 = dataset.query(
            quality=q1, prev_quality=q0, box=box, filters=filters, engine="recursive"
        )
        b2, s2 = dataset.query(
            quality=q1, prev_quality=q0, box=box, filters=filters, engine="frontier"
        )
        assert_same_result(b1, s1, b2, s2)
        assert s1.pruned_files == s2.pruned_files

    @SETTINGS
    @given(box=dataset_boxes(), filters=dataset_filters(), qs=quality_pairs())
    def test_progressive_equals_direct(self, dataset, box, filters, qs):
        """Satellite: q1 then the q1→q2 increment == a direct q2 query."""
        q1, q2 = qs
        first, _ = dataset.query(quality=q1, box=box, filters=filters)
        inc, _ = dataset.query(quality=q2, prev_quality=q1, box=box, filters=filters)
        direct, _ = dataset.query(quality=q2, box=box, filters=filters)
        assert len(first) + len(inc) == len(direct)
        combined = ParticleBatch.concatenate([first, inc]) if len(first) + len(inc) else first
        assert canonical(combined) == canonical(direct)
