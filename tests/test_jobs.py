"""Tests for the durable batch-job queue: lease/complete/fail semantics,
resume after a hard kill, dead-lettering, and the exactly-once
completion log — including the worker-crash drill where a shard process
dies mid-sweep and the job still finishes with every query answered
exactly once and byte-identical digests.
"""

import threading
import time

import pytest

from repro import QueryRequest
from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine
from repro.serve import (
    DegradationConfig,
    JobConfig,
    JobRunner,
    JobStore,
    QueryService,
    ServeConfig,
    ShardedQueryService,
    make_sweep,
)
from repro.serve.loadgen import _digest
from repro.types import Box
from tests.test_pipeline import make_rank_data


def serve_config(**kw):
    kw.setdefault("capacity", 2)
    kw.setdefault("degradation", DegradationConfig(enabled=False))
    return ServeConfig(**kw)


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=9, seed=21)
    out = tmp_path_factory.mktemp("jobs")
    report = TwoPhaseWriter(testing_machine(), target_size=128 * 1024).write(
        data, out_dir=out, name="jb"
    )
    return report.metadata_path


@pytest.fixture(scope="module")
def direct(written):
    with BATDataset(written) as ds:
        yield ds


@pytest.fixture(scope="module")
def service(written):
    svc = QueryService(written, serve_config())
    yield svc
    svc.close()


def sweep_for(ds, n=6, seed=3):
    return make_sweep(ds.bounds, n, seed=seed)


REQS = [QueryRequest(quality=q, box=Box((0, 0, 0), (4, 4, 4))) for q in (0.3, 0.7, 1.0)]


# ---------------------------------------------------------------------------
# store semantics (no service involved; fake clock throughout)


class TestJobStore:
    def test_submit_idempotent(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            assert store.submit("j", REQS, now=0.0) == 3
            assert store.submit("j", REQS, now=1.0) == 0  # resubmit: no-op
            assert store.job("j")["total"] == 3
            assert store.jobs() == ["j"]
            c = store.counts("j")
            assert c["pending"] == 3 and c["total"] == 3

    def test_unknown_job_and_task(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            with pytest.raises(KeyError):
                store.job("missing")
            store.submit("j", REQS, now=0.0)
            with pytest.raises(KeyError):
                store.complete("j", 99, "w", "d", 0, now=0.0)
            with pytest.raises(KeyError):
                store.fail("j", 99, "boom", now=0.0)

    def test_lease_orders_by_index_and_respects_limit(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS, now=0.0)
            got = store.lease("j", "w0", limit=2, now=1.0)
            assert [idx for idx, _, _ in got] == [0, 1]
            # only the unleased task remains claimable while leases live
            rest = store.lease("j", "w1", limit=5, now=1.0)
            assert [idx for idx, _, _ in rest] == [2]
            assert store.lease("j", "w1", limit=5, now=1.0) == []

    def test_lease_expiry_redispatches(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS, now=0.0)
            store.lease("j", "dead-runner", limit=3, lease_seconds=10.0, now=0.0)
            assert store.lease("j", "w1", limit=3, now=5.0) == []  # still held
            again = store.lease("j", "w1", limit=3, now=10.0)      # expired
            assert [idx for idx, _, _ in again] == [0, 1, 2]
            assert store.counts("j")["leased"] == 3

    def test_complete_idempotent_exactly_once_log(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS, now=0.0)
            store.lease("j", "w0", limit=1, now=0.0)
            assert store.complete("j", 0, "w0", "digest-a", 10, now=1.0)
            # the redelivered twin acknowledges again: log unchanged
            assert not store.complete("j", 0, "w1", "digest-a", 10, now=2.0)
            assert not store.complete("j", 0, "w2", "digest-a", 10, now=3.0)
            rows = store.completions("j")
            assert rows == [(0, "digest-a", 10, 2)]
            c = store.counts("j")
            assert c["done"] == 1 and c["completions"] == 1
            assert c["duplicate_acks"] == 2

    def test_fail_backoff_then_dead_letter(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS, now=0.0)
            store.lease("j", "w0", limit=1, now=0.0)
            assert store.fail("j", 0, "boom-1", max_attempts=3, backoff=1.0,
                              now=0.0) == "pending"
            # backoff gates re-leasing: not_before = 0.0 + 1.0 * 2**0
            leased = [i for i, _, _ in store.lease("j", "w0", limit=3, now=0.5)]
            assert 0 not in leased  # tasks 1, 2 lease; task 0 is cooling off
            leased = [i for i, _, _ in store.lease("j", "w0", limit=3, now=1.5)]
            assert 0 in leased
            assert store.fail("j", 0, "boom-2", max_attempts=3, backoff=1.0,
                              now=2.0) == "pending"
            store.lease("j", "w0", limit=1, now=10.0)
            assert store.fail("j", 0, "boom-3", max_attempts=3, backoff=1.0,
                              now=11.0) == "dead"
            assert store.dead("j") == [(0, "boom-3")]
            # dead tasks never lease again
            assert 0 not in [i for i, _, _ in store.lease("j", "w0", limit=5,
                                                          now=1e9)]

    def test_release_returns_lease_cleanly(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS, now=0.0)
            store.lease("j", "w0", limit=1, lease_seconds=1e9, now=0.0)
            store.release("j", 0)
            got = store.lease("j", "w1", limit=1, now=1.0)
            assert [i for i, _, _ in got] == [0]

    def test_outstanding_tracks_open_work(self, tmp_path):
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", REQS[:1], now=0.0)
            assert store.outstanding("j")
            store.lease("j", "w0", limit=1, now=0.0)
            assert store.outstanding("j")
            store.complete("j", 0, "w0", "d", 1, now=1.0)
            assert not store.outstanding("j")

    def test_request_docs_round_trip_through_sqlite(self, tmp_path):
        from repro.serve import request_from_doc

        req = QueryRequest(
            quality=0.4, box=Box((0, 0, 0), (1, 2, 3)),
            filters=(AttributeFilter("mass", 0.1, 0.9),), columns=("mass",),
        )
        with JobStore(tmp_path / "q.db") as store:
            store.submit("j", [req], now=0.0)
            (idx, doc, attempts), = store.lease("j", "w", now=0.0)
            assert request_from_doc(doc) == req

    def test_store_survives_reopen(self, tmp_path):
        path = tmp_path / "q.db"
        with JobStore(path) as store:
            store.submit("j", REQS, now=0.0)
            store.lease("j", "w0", limit=1, now=0.0)
            store.complete("j", 0, "w0", "d0", 5, now=1.0)
        with JobStore(path) as store:  # a restarted process, same file
            c = store.counts("j")
            assert c["done"] == 1 and c["pending"] == 2
            assert store.completions("j") == [(0, "d0", 5, 0)]


class TestMakeSweep:
    def test_deterministic_and_in_bounds(self, direct):
        a = make_sweep(direct.bounds, 8, seed=7)
        b = make_sweep(direct.bounds, 8, seed=7)
        assert a == b
        assert make_sweep(direct.bounds, 8, seed=8) != a
        lo, hi = direct.bounds.lower, direct.bounds.upper
        for req in a:
            assert all(bl >= l and bh <= h for bl, bh, l, h in
                       zip(req.box.lower, req.box.upper, lo, hi))


# ---------------------------------------------------------------------------
# the runner against a live service


class TestJobRunner:
    def test_drains_sweep_with_identical_digests(self, tmp_path, service, direct):
        sweep = sweep_for(direct)
        with JobStore(tmp_path / "q.db") as store:
            store.submit("sweep", sweep)
            counts = JobRunner(store, service, "sweep").run()
            assert counts["done"] == len(sweep)
            assert counts["dead"] == 0 and counts["duplicate_acks"] == 0
            for idx, digest, points, dups in store.completions("sweep"):
                batch, _ = direct.query(sweep[idx])
                assert _digest(batch) == digest
                assert points == len(batch)
                assert dups == 0

    def test_resume_after_hard_kill(self, tmp_path, service, direct):
        """Kill the runner mid-sweep (leases left in hand), restart, resume."""
        sweep = sweep_for(direct, n=8, seed=11)
        cfg = JobConfig(lease_seconds=0.2, batch_size=2)
        with JobStore(tmp_path / "q.db") as store:
            store.submit("sweep", sweep)
            # clean_stop=False: the runner stops like a SIGKILL — tasks it
            # leased but never ran stay leased until the lease expires
            JobRunner(store, service, "sweep", worker="r0", config=cfg).run(
                max_tasks=3, clean_stop=False
            )
            mid = store.counts("sweep")
            assert mid["done"] == 3 and mid["done"] + mid["leased"] + mid["pending"] == 8
            time.sleep(0.25)  # leases expire
            counts = JobRunner(
                store, service, "sweep", worker="r1", config=cfg
            ).run()
            assert counts["done"] == 8
            assert counts["completions"] == 8  # exactly once in the log
            for idx, digest, _points, _dups in store.completions("sweep"):
                batch, _ = direct.query(sweep[idx])
                assert _digest(batch) == digest

    def test_redelivery_is_idempotent(self, tmp_path, service, direct):
        """Re-executing an already-done task only bumps the dup counter."""
        sweep = sweep_for(direct, n=3)
        with JobStore(tmp_path / "q.db") as store:
            store.submit("sweep", sweep)
            JobRunner(store, service, "sweep").run()
            # simulate the redelivered twin of task 0 acknowledging late
            resp = service.execute(sweep[0])
            assert not store.complete("sweep", 0, "late", _digest(resp.batch),
                                      len(resp))
            c = store.counts("sweep")
            assert c["completions"] == 3 and c["duplicate_acks"] == 1

    def test_poisoned_task_dead_letters_and_sweep_completes(
        self, tmp_path, service, direct
    ):
        sweep = sweep_for(direct, n=3)
        poisoned = sweep + [QueryRequest(quality=1.0, box=Box((0, 0, 0), (1, 1, 1)),
                                         columns=("no_such_column",))]
        cfg = JobConfig(max_attempts=2, backoff=0.01)
        with JobStore(tmp_path / "q.db") as store:
            store.submit("sweep", poisoned)
            counts = JobRunner(store, service, "sweep", config=cfg).run()
            assert counts["done"] == 3
            assert counts["dead"] == 1
            (idx, error), = store.dead("sweep")
            assert idx == 3 and error

    def test_concurrent_runners_share_one_job(self, tmp_path, service, direct):
        sweep = sweep_for(direct, n=10, seed=13)
        cfg = JobConfig(batch_size=1)
        with JobStore(tmp_path / "q.db") as store:
            store.submit("sweep", sweep)
            runners = [
                JobRunner(store, service, "sweep", worker=f"r{i}", config=cfg)
                for i in range(3)
            ]
            threads = [threading.Thread(target=r.run) for r in runners]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            c = store.counts("sweep")
            assert c["done"] == 10 and c["completions"] == 10
            assert c["duplicate_acks"] == 0  # leases kept them disjoint


# ---------------------------------------------------------------------------
# satellite: shard-worker crash mid-job


class TestWorkerCrashMidJob:
    def test_shard_crash_resumes_exactly_once_and_byte_identical(
        self, tmp_path, written, direct
    ):
        """Kill a shard worker process mid-sweep: the router requeues the
        in-flight scatter onto a respawned worker, the job finishes with
        every task exactly once in the completion log, and every digest
        matches a direct single-process query."""
        sweep = sweep_for(direct, n=8, seed=17)
        with ShardedQueryService(written, serve_config(), n_shards=2) as svc:
            with JobStore(tmp_path / "q.db") as store:
                store.submit("sweep", sweep)
                runner = JobRunner(store, svc, "sweep", config=JobConfig(batch_size=2))
                killed = threading.Event()

                def assassin():
                    # wait until the sweep is demonstrably in flight
                    deadline = time.time() + 30.0
                    while time.time() < deadline:
                        if store.counts("sweep")["done"] >= 2:
                            break
                        time.sleep(0.01)
                    svc._shards[0].process.kill()
                    killed.set()

                t = threading.Thread(target=assassin)
                t.start()
                counts = runner.run()
                t.join(30.0)
                assert killed.is_set()
                assert counts["done"] == 8
                assert counts["dead"] == 0
                assert counts["completions"] == 8  # exactly once, post-crash
                assert sum(c.restarts for c in svc._shards) >= 1
                for idx, digest, _pts, _dups in store.completions("sweep"):
                    batch, _ = direct.query(sweep[idx])
                    assert _digest(batch) == digest
