"""Tests for the metadata query planner, plan cache, and cache hygiene."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bat import AttributeFilter
from repro.bat.filecache import BATFileCache
from repro.bat.query import QueryStats
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.core.metadata import DatasetMetadata
from repro.core.planner import PlanCache, leaves_for_boxes, plan_query
from repro.machines import testing_machine as make_test_machine
from repro.types import Box
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=16, seed=5)
    out = tmp_path_factory.mktemp("plan")
    writer = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024)
    report = writer.write(data, out_dir=out, name="plan")
    return report, data


@pytest.fixture()
def dataset(written):
    report, _ = written
    with BATDataset(report.metadata_path) as ds:
        yield ds


class TestPlanQuery:
    def test_no_shape_keeps_all_files_full(self, dataset):
        plan = plan_query(dataset.metadata)
        assert len(plan.files) == dataset.n_files
        assert plan.pruned_files == 0
        assert all(fp.action == "full" and fp.box is None for fp in plan.files)

    def test_spatial_pruning_matches_metadata_walk(self, dataset):
        box = Box((0.0, 0.0, 0.0), (1.2, 1.2, 1.0))
        plan = plan_query(dataset.metadata, box=box)
        assert [fp.leaf_index for fp in plan.files] == dataset.metadata.query_box(box)
        assert plan.pruned_spatial_files == dataset.n_files - len(plan.files)
        assert plan.pruned_files > 0

    def test_contained_leaf_gets_no_residual_box(self, dataset):
        plan = plan_query(dataset.metadata, box=dataset.metadata.bounds)
        assert len(plan.files) == dataset.n_files
        assert all(fp.box is None and fp.action == "full" for fp in plan.files)

    def test_partial_overlap_keeps_residual_box(self, dataset):
        box = Box((0.5, 0.5, 0.2), (1.5, 1.5, 0.8))
        plan = plan_query(dataset.metadata, box=box)
        assert plan.files
        assert all(fp.box == box for fp in plan.files if fp.action == "filtered")

    def test_empty_query_box_prunes_everything(self, dataset):
        plan = plan_query(dataset.metadata, box=Box((1, 1, 1), (0, 0, 0)))
        assert not plan.files
        assert plan.pruned_spatial_files == dataset.n_files

    def test_bitmap_pruning_is_conservative(self, dataset, written):
        _, data = written
        # a narrow band prunes some files but never one holding a match
        filt = AttributeFilter("mass", 0.0, 0.05)
        plan = plan_query(dataset.metadata, filters=(filt,))
        batch, _ = dataset.query(filters=(filt,))
        allmass = np.concatenate([b.attributes["mass"] for b in data.batches])
        assert len(batch) == ((allmass >= filt.lo) & (allmass <= filt.hi)).sum()

    def test_impossible_filter_prunes_all(self, dataset):
        lo, hi = dataset.attr_ranges["mass"]
        filt = AttributeFilter("mass", hi + 10.0, hi + 11.0)
        plan = plan_query(dataset.metadata, filters=(filt,))
        assert not plan.files
        assert plan.pruned_bitmap_files == dataset.n_files

    def test_unknown_attribute_raises(self, dataset):
        with pytest.raises(KeyError):
            plan_query(dataset.metadata, filters=(AttributeFilter("nope", 0, 1),))

    def test_degenerate_point_box(self, dataset):
        """A zero-volume box is a valid query, not a crash."""
        point = (1.0, 1.0, 0.5)
        box = Box(point, point)
        plan = plan_query(dataset.metadata, box=box)
        assert len(plan.files) + plan.pruned_files == dataset.n_files
        batch, _ = dataset.query(box=box)
        full, _ = dataset.query()
        assert len(batch) == box.contains_points(full.positions).sum()

    def test_zero_leaf_overlap_box(self, dataset):
        """A well-formed box beyond every leaf prunes the whole plan."""
        upper = dataset.metadata.bounds.upper
        box = Box(tuple(u + 1.0 for u in upper), tuple(u + 2.0 for u in upper))
        plan = plan_query(dataset.metadata, box=box)
        assert not plan.files
        assert plan.pruned_spatial_files == dataset.n_files

    def test_planner_agrees_with_query_results(self, dataset):
        """No pruned file could have contributed: planned == unplanned."""
        box = Box((0.0, 0.0, 0.0), (1.0, 4.0, 1.0))
        filt = AttributeFilter("temp", 280.0, 310.0)
        planned, _ = dataset.query(box=box, filters=(filt,))
        parts = []
        for leaf in dataset.metadata.leaves:  # brute force: every file
            from repro.bat.query import query_file

            res, _ = query_file(dataset.file(leaf.leaf_index), box=box, filters=(filt,))
            if len(res):
                parts.append(res)
        brute = np.concatenate([p.positions for p in parts])
        assert planned.positions.tobytes() == brute.tobytes()


class TestPlanCache:
    def test_memoized_identity(self, dataset):
        box = Box((0, 0, 0), (1, 1, 1))
        filt = (AttributeFilter("mass", 0.2, 0.8),)
        p1 = dataset.plan(box, filt)
        p2 = dataset.plan(box, filt)
        assert p1 is p2
        assert dataset._plan_cache.hits >= 1

    def test_quality_independent_reuse(self, dataset):
        box = Box((0, 0, 0), (2, 2, 1))
        plan = dataset.plan(box)
        before = dataset._plan_cache.hits
        dataset.query(quality=0.3, box=box)
        dataset.query(quality=0.9, prev_quality=0.3, box=box)
        assert dataset._plan_cache.hits >= before + 2
        assert dataset.plan(box) is plan

    def test_lru_eviction(self, dataset):
        cache = PlanCache(capacity=2)
        a = cache.get_or_build(dataset.metadata, None, ())
        cache.get_or_build(dataset.metadata, Box((0, 0, 0), (1, 1, 1)), ())
        cache.get_or_build(dataset.metadata, Box((0, 0, 0), (2, 2, 1)), ())
        assert len(cache) == 2
        assert cache.get_or_build(dataset.metadata, None, ()) is not a  # evicted

    def test_mismatched_plan_rejected(self, dataset):
        plan = dataset.plan(Box((0, 0, 0), (1, 1, 1)))
        with pytest.raises(ValueError, match="plan"):
            dataset.query(box=Box((0, 0, 0), (2, 2, 1)), plan=plan)


class TestCacheHygiene:
    def test_skipped_files_not_faulted_into_cache(self, written):
        report, _ = written
        with BATDataset(report.metadata_path) as ds:
            box = Box((0.0, 0.0, 0.0), (0.9, 0.9, 1.0))  # touches few files
            _, stats = ds.query(box=box)
            assert stats.pruned_files > 0
            assert stats.files_opened == len(ds.plan(box).files)
            assert len(ds._cache) == stats.files_opened

    def test_empty_result_opens_no_files(self, written):
        report, _ = written
        with BATDataset(report.metadata_path) as ds:
            box = Box((50.0, 50.0, 50.0), (51.0, 51.0, 51.0))  # outside domain
            batch, stats = ds.query(box=box)
            assert len(batch) == 0
            assert stats.pruned_files == ds.n_files
            assert stats.files_opened == 0
            assert len(ds._cache) == 0  # satellite: no cache faulting
            assert sorted(batch.attributes) == ["mass", "temp"]

    def test_legacy_manifest_specs_without_caching(self, written, tmp_path):
        """Manifests without attr_dtypes fall back to a transient open."""
        report, _ = written
        meta_path = Path(report.metadata_path)
        doc = json.loads(meta_path.read_text())
        doc.pop("attr_dtypes")
        legacy = tmp_path / "legacy.meta.json"
        legacy.write_text(json.dumps(doc))
        for leaf in doc["leaves"]:
            src = meta_path.parent / leaf["file"]
            (tmp_path / leaf["file"]).write_bytes(src.read_bytes())
        with BATDataset(legacy) as ds:
            assert ds.metadata.attribute_specs() is None
            batch, _ = ds.query(box=Box((50.0,) * 3, (51.0,) * 3))
            assert sorted(batch.attributes) == ["mass", "temp"]
            assert len(ds._cache) == 0

    def test_all_pruned_filter_opens_no_handle(self, dataset):
        """An impossible filter must never touch the file-handle cache."""
        _, hi = dataset.attr_ranges["mass"]
        batch, stats = dataset.query(filters=(AttributeFilter("mass", hi + 5.0, hi + 6.0),))
        assert len(batch) == 0
        assert stats.files_opened == 0
        s = dataset.file_cache.stats()
        assert s["open"] == 0
        assert s["misses"] == 0  # not even a miss: the planner never asked

    def test_peek_does_not_perturb_counters(self, written):
        """peek() is pure introspection: no hit/miss/eviction accounting."""
        report, _ = written
        meta_path = Path(report.metadata_path)
        leaves = DatasetMetadata.load(meta_path).leaves[:3]
        paths = [meta_path.parent / leaf.file_name for leaf in leaves]
        with BATFileCache(capacity=2) as cache:
            fa = cache.get(paths[0])
            cache.get(paths[1])
            before = cache.stats()
            assert cache.peek(paths[0]) is fa
            assert cache.peek(paths[2]) is None  # absent: must not open it
            after = cache.stats()
            counters = ("hits", "misses", "evictions", "open", "hit_rate")
            assert {k: after[k] for k in counters} == {k: before[k] for k in counters}
            # and LRU order was left alone: a third insert evicts paths[0]
            cache.get(paths[2])
            assert cache.peek(paths[0]) is None
            assert cache.peek(paths[1]) is not None

    def test_filecache_stats_accounting(self, written):
        report, _ = written
        meta_path = Path(report.metadata_path)
        leaf = DatasetMetadata.load(meta_path).leaves[0]
        with BATFileCache(capacity=2) as cache:
            cache.get(meta_path.parent / leaf.file_name)
            cache.get(meta_path.parent / leaf.file_name)
            s = cache.stats()
        assert s["hits"] == 1
        assert s["misses"] == 1
        assert s["evictions"] == 0
        assert s["hit_rate"] == pytest.approx(0.5)

    def test_eviction_order_regression(self, written):
        """peek() must not refresh LRU order; get() must."""
        report, _ = written
        meta_path = Path(report.metadata_path)
        meta_leaves = DatasetMetadata.load(meta_path).leaves[:4]
        assert len(meta_leaves) == 4
        paths = [meta_path.parent / leaf.file_name for leaf in meta_leaves]
        cache = BATFileCache(capacity=2)
        fa, fb = cache.get(paths[0]), cache.get(paths[1])
        assert cache.peek(paths[0]) is fa  # no LRU refresh
        cache.get(paths[2])  # evicts paths[0], not paths[1]
        assert cache.peek(paths[0]) is None
        assert cache.peek(paths[1]) is fb
        cache.get(paths[1])  # refresh b
        cache.get(paths[3])  # now evicts paths[2]
        assert cache.peek(paths[2]) is None
        assert cache.peek(paths[1]) is fb
        assert cache.evictions == 2
        cache.close()


class TestLeavesForBoxes:
    def test_matches_brute_force(self, dataset):
        rng = np.random.default_rng(9)
        lo = rng.uniform(0, 3, (20, 3))
        bounds = np.stack([lo, lo + rng.uniform(0.1, 1.5, (20, 3))], axis=1)
        hits = leaves_for_boxes(dataset.metadata, bounds)
        assert len(hits) == 20
        for r in range(20):
            box = Box(tuple(bounds[r, 0]), tuple(bounds[r, 1]))
            expect = [
                i for i, leaf in enumerate(dataset.metadata.leaves)
                if leaf.bounds.intersects(box)
            ]
            assert hits[r].tolist() == expect

    def test_chunked_equals_unchunked(self, dataset):
        rng = np.random.default_rng(10)
        lo = rng.uniform(0, 3, (7, 3))
        bounds = np.stack([lo, lo + 0.5], axis=1)
        a = leaves_for_boxes(dataset.metadata, bounds, chunk=2)
        b = leaves_for_boxes(dataset.metadata, bounds)
        assert all(x.tolist() == y.tolist() for x, y in zip(a, b))


class TestStats:
    def test_merge_includes_new_fields(self):
        a = QueryStats(pruned_files=2, files_opened=1)
        b = QueryStats(pruned_files=3, files_opened=4)
        a.merge(b)
        assert a.pruned_files == 5
        assert a.files_opened == 5

    def test_merge_ordered_includes_new_fields(self):
        total = QueryStats.merge_ordered(
            [(1, QueryStats(files_opened=1)), (0, QueryStats(pruned_files=2))]
        )
        assert total.files_opened == 1
        assert total.pruned_files == 2

    def test_attr_dtypes_round_trip(self, written):
        report, data = written
        with BATDataset(report.metadata_path) as ds:
            specs = {sp.name: sp.dtype for sp in ds.metadata.attribute_specs()}
        expect = {n: a.dtype for n, a in data.batches[0].attributes.items()}
        assert specs == expect
