"""Property-based tests over the full write/read pipeline.

Hypothesis drives randomized decompositions and particle populations
through write -> metadata -> restart-read and asserts conservation
invariants: no particle is ever lost, duplicated, or misrouted.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RankData, TwoPhaseReader, TwoPhaseWriter
from repro.machines import testing_machine as make_test_machine
from repro.types import Box, ParticleBatch
from repro.workloads import grid_decompose

MACHINE = make_test_machine()
DOMAIN = Box((0.0, 0.0, 0.0), (2.0, 2.0, 1.0))


def random_rank_data(nranks: int, seed: int, empty_fraction: float) -> RankData:
    rng = np.random.default_rng(seed)
    bounds = grid_decompose(DOMAIN, nranks, ndims=3)
    batches = []
    for r in range(nranks):
        if rng.random() < empty_fraction:
            n = 0
        else:
            n = int(rng.integers(1, 800))
        lo, hi = bounds[r]
        pos = lo + rng.random((n, 3)) * (hi - lo)
        batches.append(
            ParticleBatch(pos.astype(np.float32), {"val": rng.random(n)})
        )
    return RankData(
        bounds=bounds, counts=np.array([len(b) for b in batches]), batches=batches
    )


class TestPipelineConservation:
    @settings(max_examples=12, deadline=None)
    @given(
        nranks=st.integers(1, 24),
        seed=st.integers(0, 2**31),
        empty_fraction=st.floats(0.0, 0.9),
        target_kb=st.sampled_from([16, 64, 512]),
    )
    def test_write_read_conserves_particles(self, tmp_path_factory, nranks, seed, empty_fraction, target_kb):
        data = random_rank_data(nranks, seed, empty_fraction)
        out = tmp_path_factory.mktemp("prop")
        writer = TwoPhaseWriter(MACHINE, target_size=target_kb * 1024)
        report = writer.write(data, out_dir=out, name="p")

        # metadata counts agree with the input
        assert report.metadata.total_particles == data.total_particles

        if data.total_particles == 0:
            assert report.n_files == 0
            return

        # restart on a different decomposition
        reader = TwoPhaseReader(MACHINE)
        read_ranks = max(1, nranks // 2)
        rb = grid_decompose(DOMAIN, read_ranks, ndims=3)
        rrep = reader.read(report.metadata, rb, data_dir=out)
        got = sum(len(b) for b in rrep.batches)
        assert got == data.total_particles

        # every particle landed on the rank owning its region
        for r in range(read_ranks):
            box = Box.from_array(rb[r])
            assert box.contains_points(rrep.batches[r].positions).all()

        # attribute multiset preserved end to end (ranks that received
        # nothing return schema-less empty batches)
        src = np.sort(
            np.concatenate([b.attributes["val"] for b in data.batches if len(b)])
        )
        dst = np.sort(
            np.concatenate([b.attributes["val"] for b in rrep.batches if len(b)])
        )
        np.testing.assert_array_equal(src, dst)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_progressive_reads_partition(self, tmp_path_factory, seed):
        data = random_rank_data(9, seed, 0.2)
        if data.total_particles == 0:
            return
        out = tmp_path_factory.mktemp("propq")
        report = TwoPhaseWriter(MACHINE, target_size=64 * 1024).write(
            data, out_dir=out, name="q"
        )
        from repro.core.dataset import BATDataset

        with BATDataset(report.metadata_path) as ds:
            prev, total = 0.0, 0
            for q in (0.3, 0.6, 1.0):
                batch, _ = ds.query(quality=q, prev_quality=prev)
                total += len(batch)
                prev = q
            assert total == data.total_particles
