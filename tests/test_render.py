"""Tests for density projections and LOD shape preservation."""

import numpy as np
import pytest

from repro.types import Box
from repro.viz import ascii_render, density_projection, projection_similarity


class TestDensityProjection:
    def test_counts_conserved(self):
        rng = np.random.default_rng(0)
        pts = rng.random((5000, 3))
        g = density_projection(pts, axis=2, shape=(32, 16))
        assert g.shape == (16, 32)
        assert g.sum() == 5000

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            density_projection(np.zeros((1, 3)), axis=3)
        with pytest.raises(ValueError):
            density_projection(np.zeros((1, 3)), shape=(0, 4))

    def test_empty_input(self):
        g = density_projection(np.empty((0, 3)), shape=(8, 8))
        assert g.sum() == 0

    def test_localized_mass_lands_in_right_cell(self):
        pts = np.full((100, 3), 0.9)
        box = Box((0, 0, 0), (1, 1, 1))
        g = density_projection(pts, axis=1, shape=(10, 10), bounds=box)
        # x=0.9 -> col 9; z=0.9 -> row 9
        assert g[9, 9] == 100
        assert g.sum() == 100

    def test_weights(self):
        pts = np.array([[0.1, 0.5, 0.1], [0.9, 0.5, 0.9]])
        g = density_projection(pts, axis=1, shape=(4, 4), weights=np.array([2.0, 5.0]),
                               bounds=Box((0, 0, 0), (1, 1, 1)))
        assert g.sum() == 7.0
        assert g[0, 0] == 2.0
        assert g[3, 3] == 5.0

    def test_explicit_bounds_clip(self):
        pts = np.array([[2.0, 0.5, 0.5]])  # outside the box
        box = Box((0, 0, 0), (1, 1, 1))
        g = density_projection(pts, axis=1, shape=(4, 4), bounds=box)
        assert g.sum() == 1  # clamped to the edge cell, not dropped
        assert g[2, 3] == 1  # z=0.5 -> row 2 of 4


class TestAsciiRender:
    def test_shape_and_charset(self):
        g = np.zeros((3, 5))
        g[1, 2] = 10
        art = ascii_render(g)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 5 for l in lines)
        assert "@" in art

    def test_empty_grid_blank(self):
        art = ascii_render(np.zeros((2, 4)))
        assert set(art) <= {" ", "\n"}

    def test_ndim_validation(self):
        with pytest.raises(ValueError):
            ascii_render(np.zeros(5))

    def test_top_row_is_high_coordinate(self):
        g = np.zeros((4, 4))
        g[3, 0] = 100  # highest row index = highest coordinate
        art = ascii_render(g)
        assert art.splitlines()[0][0] == "@"


class TestProjectionSimilarity:
    def test_identical(self):
        g = np.random.default_rng(1).random((8, 8))
        assert projection_similarity(g, g) == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        a[0, 0] = 1
        b[3, 3] = 1
        assert projection_similarity(a, b) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            projection_similarity(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_empty_is_zero(self):
        assert projection_similarity(np.zeros((2, 2)), np.ones((2, 2))) == 0.0

    def test_lod_preserves_shape(self, tmp_path):
        """Fig 13's claim, quantified: the coarse LOD projection is close
        to the full data's projection."""
        from repro.bat import build_bat
        from repro.bat.query import query_file
        from repro.workloads import CoalBoiler

        batch = CoalBoiler().sample(3001, 80_000)
        built = build_bat(batch)
        with built.open() as f:
            full, _ = query_file(f, quality=1.0)
            coarse, _ = query_file(f, quality=0.2)
        box = Box.of_points(full.positions)
        g_full = density_projection(full.positions, axis=1, shape=(24, 12), bounds=box)
        g_coarse = density_projection(coarse.positions, axis=1, shape=(24, 12), bounds=box)
        sim = projection_similarity(g_full, g_coarse)
        assert sim > 0.75
        # and a random corner blob of the same size is much worse
        rng = np.random.default_rng(0)
        blob = np.asarray(box.lower) + 0.1 * box.extents * rng.random((len(coarse), 3))
        g_blob = density_projection(blob, axis=1, shape=(24, 12), bounds=box)
        assert projection_similarity(g_full, g_blob) < sim - 0.3
