"""Tests for automatic target-size selection (§VII extension)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import TwoPhaseWriter
from repro.core.autotune import (
    MAX_TARGET_SIZE,
    MIN_TARGET_SIZE,
    recommend_aggregation_factor,
    recommend_target_size,
)
from repro.machines import testing_machine as make_test_machine
from repro.workloads import uniform_rank_data

MB = 1 << 20


class TestRecommendFactor:
    def test_small_scale_near_one(self):
        assert recommend_aggregation_factor(96) == 1.0
        assert recommend_aggregation_factor(384) == 1.0

    def test_moderate_scale(self):
        assert recommend_aggregation_factor(1536) == 4.0

    def test_large_scale_at_least_16(self):
        # paper: "At larger scales, the target size should be increased to
        # 16:1 or higher"
        assert recommend_aggregation_factor(6144) >= 16.0
        assert recommend_aggregation_factor(24576) >= 16.0

    def test_growth_factor_scales_up(self):
        base = recommend_aggregation_factor(6144)
        grown = recommend_aggregation_factor(6144, growth_factor=4.0)
        assert grown == pytest.approx(4 * base)

    def test_capped(self):
        assert recommend_aggregation_factor(10**6, growth_factor=100) == 256.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_aggregation_factor(0)
        with pytest.raises(ValueError):
            recommend_aggregation_factor(8, growth_factor=0.5)

    @given(st.integers(1, 10**6))
    def test_monotone_in_scale(self, nranks):
        assert recommend_aggregation_factor(nranks * 2) >= recommend_aggregation_factor(nranks)


class TestRecommendTargetSize:
    def test_clamped_to_bounds(self):
        assert recommend_target_size(0, 64) == MIN_TARGET_SIZE
        assert recommend_target_size(1e18, 64) == MAX_TARGET_SIZE

    def test_whole_megabytes(self):
        t = recommend_target_size(1536 * 4.06e6, 1536)
        assert t % MB == 0

    def test_paper_operating_points(self):
        # 1536 ranks x 4.06 MB -> ~4:1 -> ~16 MB target
        t = recommend_target_size(1536 * 4.06e6, 1536)
        assert 8 * MB <= t <= 32 * MB
        # 24k ranks -> >=16:1 -> >=64 MB
        t = recommend_target_size(24576 * 4.06e6, 24576)
        assert t >= 64 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_target_size(-1, 64)


class TestAutoWriter:
    def test_auto_resolves_per_write(self):
        m = make_test_machine()
        writer = TwoPhaseWriter(m, target_size="auto")
        small = uniform_rank_data(16, particles_per_rank=2000)
        rep = writer.write(small)
        assert rep.n_files >= 1

    def test_auto_adapts_to_data_size(self):
        m = make_test_machine()
        writer = TwoPhaseWriter(m, target_size="auto")
        a = writer.write(uniform_rank_data(64, particles_per_rank=1000))
        b = writer.write(uniform_rank_data(64, particles_per_rank=64_000))
        # larger timestep -> larger files, not proportionally more files
        assert b.file_sizes.max() > a.file_sizes.max()

    def test_auto_rejects_agg_config(self):
        from repro.core import AggTreeConfig

        with pytest.raises(ValueError, match="auto"):
            TwoPhaseWriter(
                make_test_machine(), target_size="auto",
                agg_config=AggTreeConfig(target_size=MB),
            )
