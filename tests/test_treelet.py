"""Tests for median-split treelets with LOD sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.treelet import Treelet, build_treelet, treelet_node_bitmaps
from repro.bitmaps import bitmap_of_values


def make_points(n, seed=0):
    return np.random.default_rng(seed).random((n, 3)).astype(np.float32)


class TestBuildTreelet:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_treelet(np.empty((0, 3)))

    def test_bad_params(self):
        pts = make_points(10)
        with pytest.raises(ValueError):
            build_treelet(pts, lod_per_node=0)
        with pytest.raises(ValueError):
            build_treelet(pts, max_leaf_points=0)

    def test_single_point(self):
        t = build_treelet(make_points(1))
        assert t.n_nodes == 1
        assert t.is_leaf(0)
        assert t.n_points == 1

    def test_small_input_single_leaf(self):
        t = build_treelet(make_points(100), max_leaf_points=128)
        assert t.n_nodes == 1
        t.validate()

    def test_structure_valid(self):
        t = build_treelet(make_points(5000), lod_per_node=8, max_leaf_points=64)
        t.validate()
        assert t.max_depth > 2

    def test_order_is_permutation(self):
        t = build_treelet(make_points(1000), max_leaf_points=32)
        assert sorted(t.order.tolist()) == list(range(1000))

    def test_inner_nodes_store_lod_count(self):
        t = build_treelet(make_points(5000), lod_per_node=8, max_leaf_points=64)
        inner = t.axis >= 0
        assert inner.any()
        assert (t.count[inner] == 8).all()

    def test_leaf_sizes_bounded(self):
        t = build_treelet(make_points(5000), lod_per_node=8, max_leaf_points=64)
        leaves = t.axis < 0
        assert (t.count[leaves] <= 64).all()

    def test_split_separates_children(self):
        pts = make_points(4000)
        t = build_treelet(pts, lod_per_node=4, max_leaf_points=32)
        for i in range(t.n_nodes):
            if t.is_leaf(i):
                continue
            ax, split = int(t.axis[i]), float(t.split[i])
            l, r = int(t.left[i]), int(t.right[i])
            # all particles in the left subtree slice lie at or left of split
            lsl = slice(int(t.begin[l]), int(t.subtree_end[l]))
            rsl = slice(int(t.begin[r]), int(t.subtree_end[r]))
            left_pts = pts[t.order[lsl]]
            right_pts = pts[t.order[rsl]]
            assert (left_pts[:, ax] <= split + 1e-6).all()
            assert (right_pts[:, ax] >= split - 1e-6).all()

    def test_depth_increments(self):
        t = build_treelet(make_points(2000), max_leaf_points=16)
        for i in range(t.n_nodes):
            if not t.is_leaf(i):
                assert t.depth[int(t.left[i])] == t.depth[i] + 1
                assert t.depth[int(t.right[i])] == t.depth[i] + 1

    def test_lod_points_spatially_representative(self):
        """Root LOD sample bounds should cover most of the full extent."""
        rng = np.random.default_rng(5)
        pts = rng.random((10000, 3)).astype(np.float32)
        # morton-sort as the builder pipeline would
        from repro.morton import encode_positions
        from repro.types import Box

        order = np.argsort(encode_positions(pts, Box.of_points(pts)))
        t = build_treelet(pts[order], lod_per_node=64, max_leaf_points=128)
        root_lod = pts[order][t.order[: int(t.count[0])]]
        ext = root_lod.max(axis=0) - root_lod.min(axis=0)
        assert (ext > 0.5).all()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 800), st.integers(1, 16), st.integers(1, 100))
    def test_always_valid(self, n, lod, max_leaf):
        t = build_treelet(make_points(n, seed=n), lod_per_node=lod, max_leaf_points=max_leaf)
        t.validate()
        assert t.n_points == n


class TestTreeletBitmaps:
    def _tree_and_values(self, n=3000):
        rng = np.random.default_rng(2)
        pts = rng.random((n, 3)).astype(np.float32)
        t = build_treelet(pts, lod_per_node=8, max_leaf_points=64)
        vals = rng.random(n)
        vals_no = vals[t.order]
        return t, vals_no

    def test_root_covers_all_values(self):
        t, vals = self._tree_and_values()
        bms = treelet_node_bitmaps(t, vals, 0.0, 1.0)
        assert bms[0] == bitmap_of_values(vals, 0.0, 1.0)

    def test_inner_is_superset_of_children(self):
        t, vals = self._tree_and_values()
        bms = treelet_node_bitmaps(t, vals, 0.0, 1.0)
        for i in range(t.n_nodes):
            if not t.is_leaf(i):
                for c in (int(t.left[i]), int(t.right[i])):
                    assert int(bms[i]) & int(bms[c]) == int(bms[c])

    def test_node_bitmap_covers_subtree_values(self):
        t, vals = self._tree_and_values()
        bms = treelet_node_bitmaps(t, vals, 0.0, 1.0)
        for i in range(0, t.n_nodes, 7):
            sub = vals[int(t.begin[i]) : int(t.subtree_end[i])]
            direct = bitmap_of_values(sub, 0.0, 1.0)
            assert int(bms[i]) & int(direct) == int(direct)

    def test_constant_attribute_single_bin(self):
        t, _ = self._tree_and_values(500)
        vals = np.full(500, 3.5)
        bms = treelet_node_bitmaps(t, vals, 0.0, 10.0)
        assert all(bin(int(b)).count("1") == 1 for b in bms)
