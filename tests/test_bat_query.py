"""Tests for spatial, attribute, and progressive queries on BAT files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat import AttributeFilter, BATFile, build_bat
from repro.bat.query import quality_to_depth, query_file
from repro.types import Box, ParticleBatch

N = 60_000


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    pos = rng.random((N, 3)).astype(np.float32)
    # clustered blob to exercise nonuniform treelets
    pos[: N // 4] = rng.normal([0.8, 0.2, 0.5], 0.03, (N // 4, 3)).astype(np.float32)
    attrs = {
        "density": rng.random(N),
        "vel": rng.normal(0.0, 10.0, N),
    }
    return pos, attrs


@pytest.fixture(scope="module")
def bat(data, tmp_path_factory):
    pos, attrs = data
    built = build_bat(ParticleBatch(pos, attrs))
    path = tmp_path_factory.mktemp("batq") / "q.bat"
    built.write(path)
    f = BATFile(path)
    yield f
    f.close()


class TestQualityToDepth:
    def test_endpoints(self):
        assert quality_to_depth(0.0, 5) == 0.0
        assert quality_to_depth(1.0, 5) == 6.0

    def test_monotone(self):
        qs = np.linspace(0, 1, 50)
        es = [quality_to_depth(q, 7) for q in qs]
        assert all(b >= a for a, b in zip(es, es[1:]))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            quality_to_depth(-0.1, 5)
        with pytest.raises(ValueError):
            quality_to_depth(1.1, 5)

    def test_log_shape_front_loaded(self):
        """Half quality should reach most of the depth range (log remap)."""
        assert quality_to_depth(0.5, 7) > 0.5 * 8


class TestFullQuery:
    def test_returns_everything(self, bat):
        res, stats = query_file(bat)
        assert len(res) == N
        assert stats.points_returned == N

    def test_zero_quality_returns_nothing(self, bat):
        res, _ = query_file(bat, quality=0.0)
        assert len(res) == 0

    def test_prev_quality_validation(self, bat):
        with pytest.raises(ValueError):
            query_file(bat, quality=0.3, prev_quality=0.5)


class TestSpatialQuery:
    def test_exact_counts(self, bat, data):
        pos, _ = data
        for box in (
            Box((0.0, 0.0, 0.0), (0.5, 0.5, 0.5)),
            Box((0.75, 0.15, 0.4), (0.85, 0.25, 0.6)),  # inside the cluster
            Box((0.99, 0.99, 0.99), (1.0, 1.0, 1.0)),
        ):
            res, _ = query_file(bat, box=box)
            assert len(res) == box.contains_points(pos).sum()

    def test_all_results_inside_box(self, bat):
        box = Box((0.1, 0.2, 0.3), (0.6, 0.7, 0.8))
        res, _ = query_file(bat, box=box)
        assert box.contains_points(res.positions).all()

    def test_disjoint_box_empty(self, bat):
        res, stats = query_file(bat, box=Box((5, 5, 5), (6, 6, 6)))
        assert len(res) == 0
        assert stats.points_tested == 0

    def test_pruning_effective(self, bat):
        box = Box((0.0, 0.0, 0.0), (0.1, 0.1, 0.1))
        _, stats = query_file(bat, box=box)
        assert stats.points_tested < N // 4

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 0.9), st.floats(0, 0.9), st.floats(0, 0.9), st.floats(0.01, 0.5))
    def test_random_boxes_exact(self, bat, data, x, y, z, w):
        pos, _ = data
        box = Box((x, y, z), (x + w, y + w, z + w))
        res, _ = query_file(bat, box=box)
        assert len(res) == box.contains_points(pos).sum()


class TestAttributeQuery:
    def test_exact_single_filter(self, bat, data):
        _, attrs = data
        res, _ = query_file(bat, filters=[AttributeFilter("density", 0.25, 0.5)])
        expected = ((attrs["density"] >= 0.25) & (attrs["density"] <= 0.5)).sum()
        assert len(res) == expected

    def test_no_false_positives_in_result(self, bat):
        res, _ = query_file(bat, filters=[AttributeFilter("vel", -5.0, 5.0)])
        assert (res.attributes["vel"] >= -5.0).all()
        assert (res.attributes["vel"] <= 5.0).all()

    def test_conjunction(self, bat, data):
        pos, attrs = data
        box = Box((0.0, 0.0, 0.0), (0.5, 1.0, 1.0))
        fs = [AttributeFilter("density", 0.0, 0.3), AttributeFilter("vel", 0.0, 50.0)]
        res, _ = query_file(bat, box=box, filters=fs)
        m = (
            box.contains_points(pos)
            & (attrs["density"] <= 0.3)
            & (attrs["vel"] >= 0.0)
        )
        assert len(res) == m.sum()

    def test_empty_range_prunes_everything(self, bat):
        res, stats = query_file(bat, filters=[AttributeFilter("vel", 1e6, 2e6)])
        assert len(res) == 0
        assert stats.points_tested == 0  # pruned at the file level

    def test_unknown_attribute(self, bat):
        with pytest.raises(KeyError):
            query_file(bat, filters=[AttributeFilter("missing", 0, 1)])

    def test_inverted_filter_rejected(self):
        with pytest.raises(ValueError):
            AttributeFilter("x", 2.0, 1.0)

    def test_bitmap_pruning_effective_when_spatially_correlated(self, tmp_path):
        """Bitmaps prune well when attributes are spatially coherent — the
        paper's stated assumption (§VII); an uncorrelated attribute would
        see nearly every leaf bitmap match."""
        rng = np.random.default_rng(3)
        pos = rng.random((40_000, 3)).astype(np.float32)
        built = build_bat(ParticleBatch(pos, {"xval": pos[:, 0].astype(np.float64)}))
        p = tmp_path / "corr.bat"
        built.write(p)
        with BATFile(p) as f:
            res, stats = query_file(f, filters=[AttributeFilter("xval", 0.0, 0.05)])
            assert len(res) == (pos[:, 0] <= np.float64(0.05)).sum()
            assert stats.points_tested < len(pos) // 4
            assert stats.pruned_bitmap > 0


class TestProgressiveQuery:
    def test_increments_partition_data(self, bat):
        prev, total = 0.0, 0
        for q in np.linspace(0.1, 1.0, 10):
            res, _ = query_file(bat, quality=float(q), prev_quality=float(prev))
            total += len(res)
            prev = float(q)
        assert total == N

    def test_increasing_quality_monotone(self, bat):
        counts = [len(query_file(bat, quality=q)[0]) for q in (0.2, 0.4, 0.8, 1.0)]
        assert counts == sorted(counts)
        assert counts[-1] == N

    def test_progressive_equals_direct(self, bat):
        """quality 0→0.3 plus 0.3→0.7 equals a direct 0→0.7 read."""
        a, _ = query_file(bat, quality=0.3)
        b, _ = query_file(bat, quality=0.7, prev_quality=0.3)
        direct, _ = query_file(bat, quality=0.7)
        combined = np.concatenate([a.positions, b.positions])
        assert len(combined) == len(direct)
        np.testing.assert_allclose(
            np.sort(np.lexsort(combined.T)), np.sort(np.lexsort(direct.positions.T))
        )

    def test_progressive_with_filters(self, bat, data):
        _, attrs = data
        f = AttributeFilter("density", 0.5, 1.0)
        prev, total = 0.0, 0
        for q in (0.25, 0.5, 0.75, 1.0):
            res, _ = query_file(bat, quality=q, prev_quality=prev, filters=[f])
            assert (res.attributes["density"] >= 0.5).all()
            total += len(res)
            prev = q
        assert total == (attrs["density"] >= 0.5).sum()

    def test_coarse_read_is_small_and_spread(self, bat):
        res, _ = query_file(bat, quality=0.05)
        assert 0 < len(res) < N // 10
        ext = res.positions.max(axis=0) - res.positions.min(axis=0)
        assert (ext > 0.5).all()  # coarse LOD covers the domain


class TestCallbackAPI:
    def test_callback_receives_all_points(self, bat):
        seen = []
        out, stats = query_file(bat, callback=lambda pos, attrs: seen.append(len(pos)))
        assert out is None
        assert sum(seen) == N
        assert stats.points_returned == N

    def test_callback_with_box(self, bat, data):
        pos, _ = data
        box = Box((0.2, 0.2, 0.2), (0.7, 0.7, 0.7))
        got = []
        query_file(bat, box=box, callback=lambda p, a: got.append(p))
        total = sum(len(p) for p in got)
        assert total == box.contains_points(pos).sum()


class TestAttributeSubsetReads:
    def test_subset_returned(self, bat):
        res, _ = query_file(bat, attributes=["density"])
        assert set(res.attributes) == {"density"}
        assert len(res) == N

    def test_empty_subset(self, bat):
        res, _ = query_file(bat, attributes=[])
        assert res.attributes == {}
        assert len(res) == N

    def test_unknown_attribute_rejected(self, bat):
        with pytest.raises(KeyError):
            query_file(bat, attributes=["nope"])

    def test_filter_attr_not_returned_unless_requested(self, bat, data):
        _, attrs = data
        res, _ = query_file(
            bat,
            filters=[AttributeFilter("vel", 0.0, 100.0)],
            attributes=["density"],
        )
        assert set(res.attributes) == {"density"}
        assert len(res) == (attrs["vel"] >= 0.0).sum()

    def test_subset_with_box_and_quality(self, bat, data):
        pos, _ = data
        box = Box((0.1, 0.1, 0.1), (0.9, 0.9, 0.9))
        res, _ = query_file(bat, quality=0.5, box=box, attributes=["vel"])
        assert set(res.attributes) == {"vel"}
        assert box.contains_points(res.positions).all()

    def test_empty_result_keeps_subset_specs(self, bat):
        res, _ = query_file(
            bat, box=Box((99, 99, 99), (100, 100, 100)), attributes=["vel"]
        )
        assert len(res) == 0
        assert set(res.attributes) == {"vel"}

    def test_dataset_level_subset(self, tmp_path):
        from repro.core import TwoPhaseWriter
        from repro.core.dataset import BATDataset
        from repro.machines import testing_machine
        from tests.test_pipeline import make_rank_data

        rd = make_rank_data(nranks=4, seed=101)
        rep = TwoPhaseWriter(testing_machine(), target_size=256 * 1024).write(
            rd, out_dir=tmp_path, name="sub"
        )
        with BATDataset(rep.metadata_path) as ds:
            res, _ = ds.query(attributes=["mass"])
            assert set(res.attributes) == {"mass"}
            assert len(res) == rd.total_particles
