"""Tests for streaming analysis queries (histograms, region stats)."""

import numpy as np
import pytest

from repro.analysis import RegionStats, attribute_histogram, attribute_summary, region_stats
from repro.bat import AttributeFilter, build_bat
from repro.types import Box, ParticleBatch

N = 30_000


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    rng = np.random.default_rng(33)
    pos = rng.random((N, 3)).astype(np.float32)
    attrs = {
        "temp": rng.normal(300.0, 25.0, N),
        "rho": rng.random(N),
    }
    built = build_bat(ParticleBatch(pos, attrs))
    return built.open(), pos, attrs


class TestRegionStatsAccumulator:
    def test_single_batch_matches_numpy(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(5, 2, 1000)
        s = RegionStats()
        s.update(vals)
        assert s.count == 1000
        assert s.mean == pytest.approx(vals.mean())
        assert s.std == pytest.approx(vals.std(), rel=1e-6)
        assert s.min == vals.min() and s.max == vals.max()

    def test_chunked_equals_whole(self):
        rng = np.random.default_rng(1)
        vals = rng.normal(0, 3, 5000)
        whole = RegionStats()
        whole.update(vals)
        chunked = RegionStats()
        for part in np.array_split(vals, 13):
            chunked.update(part)
        assert chunked.count == whole.count
        assert chunked.mean == pytest.approx(whole.mean)
        assert chunked.std == pytest.approx(whole.std, rel=1e-9)

    def test_empty_update_noop(self):
        s = RegionStats()
        s.update(np.array([]))
        assert s.count == 0
        assert s.variance == 0.0


class TestAttributeHistogram:
    def test_full_histogram_matches_numpy(self, source):
        f, _, attrs = source
        counts, edges = attribute_histogram(f, "temp", bins=50)
        ref, ref_edges = np.histogram(attrs["temp"], bins=edges)
        np.testing.assert_array_equal(counts, ref)
        assert counts.sum() <= N  # numpy drops out-of-range values identically

    def test_boxed_histogram(self, source):
        f, pos, attrs = source
        box = Box((0.0, 0.0, 0.0), (0.5, 1.0, 1.0))
        counts, edges = attribute_histogram(f, "rho", bins=10, box=box)
        mask = box.contains_points(pos)
        ref, _ = np.histogram(attrs["rho"][mask], bins=edges)
        np.testing.assert_array_equal(counts, ref)

    def test_filtered_histogram(self, source):
        f, _, attrs = source
        filt = AttributeFilter("temp", 300.0, 1e9)
        counts, edges = attribute_histogram(f, "rho", bins=8, filters=[filt])
        ref, _ = np.histogram(attrs["rho"][attrs["temp"] >= 300.0], bins=edges)
        np.testing.assert_array_equal(counts, ref)

    def test_explicit_range(self, source):
        f, _, _ = source
        counts, edges = attribute_histogram(f, "rho", bins=4, value_range=(0.0, 1.0))
        assert edges[0] == 0.0 and edges[-1] == 1.0
        assert counts.sum() == N

    def test_lod_histogram_approximates(self, source):
        f, _, attrs = source
        full, edges = attribute_histogram(f, "temp", bins=16)
        coarse, _ = attribute_histogram(f, "temp", bins=16, value_range=(edges[0], edges[-1]), quality=0.3)
        # the LOD histogram has the same shape: normalized L1 distance small
        pf = full / full.sum()
        pc = coarse / max(coarse.sum(), 1)
        assert np.abs(pf - pc).sum() < 0.15

    def test_validation(self, source):
        f, _, _ = source
        with pytest.raises(ValueError):
            attribute_histogram(f, "temp", bins=0)
        with pytest.raises(KeyError):
            attribute_histogram(f, "nope")


class TestRegionStatsQuery:
    def test_matches_direct_computation(self, source):
        f, pos, attrs = source
        box = Box((0.25, 0.25, 0.25), (0.75, 0.75, 0.75))
        stats = region_stats(f, ["temp", "rho"], box=box)
        mask = box.contains_points(pos)
        for name in ("temp", "rho"):
            ref = attrs[name][mask]
            assert stats[name].count == mask.sum()
            assert stats[name].mean == pytest.approx(ref.mean())
            assert stats[name].min == pytest.approx(ref.min())
            assert stats[name].max == pytest.approx(ref.max())
            assert stats[name].std == pytest.approx(ref.std(), rel=1e-6)

    def test_unknown_attr_validated_before_scan(self, source):
        f, _, _ = source
        with pytest.raises(KeyError):
            region_stats(f, ["temp", "missing"])

    def test_summary_covers_all_attrs(self, source):
        f, _, attrs = source
        summary = attribute_summary(f)
        assert set(summary) == set(attrs)
        assert all(s.count == N for s in summary.values())


class TestDatasetSource:
    def test_works_on_datasets(self, tmp_path):
        from repro.core import TwoPhaseWriter
        from repro.core.dataset import BATDataset
        from repro.machines import testing_machine
        from tests.test_pipeline import make_rank_data

        data = make_rank_data(nranks=8, seed=44)
        rep = TwoPhaseWriter(testing_machine(), target_size=128 * 1024).write(
            data, out_dir=tmp_path, name="an"
        )
        alltemp = np.concatenate([b.attributes["temp"] for b in data.batches])
        with BATDataset(rep.metadata_path) as ds:
            counts, edges = attribute_histogram(ds, "temp", bins=20)
            ref, _ = np.histogram(alltemp, bins=edges)
            np.testing.assert_array_equal(counts, ref)
            stats = region_stats(ds, ["temp"])
            assert stats["temp"].count == len(alltemp)
            assert stats["temp"].mean == pytest.approx(alltemp.mean())


class TestCubicSplineKernel:
    def test_normalized_over_support(self):
        from repro.analysis import cubic_spline_kernel

        h = 0.3
        r = np.linspace(0.0, h, 20_001)
        w = cubic_spline_kernel(r, h)
        integral = np.trapezoid(4.0 * np.pi * r**2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-4)

    def test_compact_support_and_monotone(self):
        from repro.analysis import cubic_spline_kernel

        h = 0.5
        r = np.linspace(0.0, 2 * h, 1001)
        w = cubic_spline_kernel(r, h)
        assert np.all(w[r >= h] == 0.0)
        inside = w[r < h]
        assert np.all(np.diff(inside) <= 1e-12)
        assert w[0] == pytest.approx(8.0 / (np.pi * h**3))

    def test_rejects_bad_h(self):
        from repro.analysis import cubic_spline_kernel

        for h in (0.0, -1.0):
            with pytest.raises(ValueError):
                cubic_spline_kernel(np.array([0.1]), h)


class TestSegmentSums:
    def test_matches_loop_with_empty_segments(self):
        from repro.analysis import _segment_sums

        rng = np.random.default_rng(7)
        values = rng.normal(size=30)
        offsets = np.array([0, 0, 4, 4, 4, 11, 30])
        got = _segment_sums(values, offsets)
        ref = np.array([
            values[a:b].sum() for a, b in zip(offsets[:-1], offsets[1:])
        ])
        np.testing.assert_allclose(got, ref)
        assert got[0] == 0.0 and got[2] == 0.0


class TestNeighborAnalyses:
    @pytest.fixture(scope="class")
    def clustered(self, tmp_path_factory):
        from repro.core import RankData, TwoPhaseWriter
        from repro.core.dataset import BATDataset
        from repro.machines import testing_machine
        from repro.workloads import grid_decompose

        rng = np.random.default_rng(13)
        centers = rng.uniform(0.2, 0.8, size=(6, 3))
        pos = np.concatenate([
            rng.normal(c, 0.03, size=(300, 3)) for c in centers
        ]).clip(0.0, 1.0).astype(np.float32)
        rho = rng.random(len(pos))
        bounds = grid_decompose(Box((0, 0, 0), (1, 1, 1)), 4, ndims=3)
        batches = []
        for lo, hi in bounds:
            inside = np.all((pos >= lo) & (pos < hi), axis=1)
            batches.append(ParticleBatch(pos[inside], {"rho": rho[inside]}))
        data = RankData(
            bounds=bounds,
            counts=np.array([len(b) for b in batches]),
            batches=batches,
        )
        out = tmp_path_factory.mktemp("fof")
        rep = TwoPhaseWriter(testing_machine(), target_size=16 * 1024).write(
            data, out_dir=out, name="cl"
        )
        ds = BATDataset(rep.metadata_path)
        yield ds
        ds.close()

    def test_sph_smooth_engines_agree(self, clustered):
        from repro.analysis import sph_smooth

        a = sph_smooth(clustered, "rho", h=0.06)
        b = sph_smooth(clustered, "rho", h=0.06, engine="brute")
        assert np.array_equal(a.result.keys, b.result.keys)
        np.testing.assert_array_equal(a.values, b.values)
        # every stored center is its own neighbor: no empty lists, and
        # the smoothed field is a convex combination of rho values
        assert a.counts.min() >= 1
        finite = np.isfinite(a.values)
        assert finite.all()
        assert a.values.min() >= 0.0 and a.values.max() <= 1.0

    def test_sph_constant_field_is_reproduced(self, clustered):
        from repro.analysis import sph_smooth

        # Shepard normalization makes a constant field exactly constant
        field = sph_smooth(clustered, "rho", h=0.05)
        w_sum_one = sph_smooth(clustered, "rho", h=0.05)
        np.testing.assert_array_equal(field.values, w_sum_one.values)

    def test_fof_engines_agree_and_labels_partition(self, clustered):
        from repro.analysis import fof_groups

        a = fof_groups(clustered, 0.02)
        b = fof_groups(clustered, 0.02, engine="brute")
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.n_groups == b.n_groups
        # labels are a compact partition: 0..n_groups-1, sizes sum to N
        assert a.labels.min() == 0 and a.labels.max() == a.n_groups - 1
        assert a.sizes.sum() == len(a.centers)
        got = a.members(0)
        assert np.all(a.labels[got] == 0)

    def test_fof_linking_length_monotone(self, clustered):
        from repro.analysis import fof_groups

        tight = fof_groups(clustered, 0.01)
        loose = fof_groups(clustered, 0.08)
        assert loose.n_groups <= tight.n_groups
