"""Tests for streaming analysis queries (histograms, region stats)."""

import numpy as np
import pytest

from repro.analysis import RegionStats, attribute_histogram, attribute_summary, region_stats
from repro.bat import AttributeFilter, build_bat
from repro.types import Box, ParticleBatch

N = 30_000


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    rng = np.random.default_rng(33)
    pos = rng.random((N, 3)).astype(np.float32)
    attrs = {
        "temp": rng.normal(300.0, 25.0, N),
        "rho": rng.random(N),
    }
    built = build_bat(ParticleBatch(pos, attrs))
    return built.open(), pos, attrs


class TestRegionStatsAccumulator:
    def test_single_batch_matches_numpy(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(5, 2, 1000)
        s = RegionStats()
        s.update(vals)
        assert s.count == 1000
        assert s.mean == pytest.approx(vals.mean())
        assert s.std == pytest.approx(vals.std(), rel=1e-6)
        assert s.min == vals.min() and s.max == vals.max()

    def test_chunked_equals_whole(self):
        rng = np.random.default_rng(1)
        vals = rng.normal(0, 3, 5000)
        whole = RegionStats()
        whole.update(vals)
        chunked = RegionStats()
        for part in np.array_split(vals, 13):
            chunked.update(part)
        assert chunked.count == whole.count
        assert chunked.mean == pytest.approx(whole.mean)
        assert chunked.std == pytest.approx(whole.std, rel=1e-9)

    def test_empty_update_noop(self):
        s = RegionStats()
        s.update(np.array([]))
        assert s.count == 0
        assert s.variance == 0.0


class TestAttributeHistogram:
    def test_full_histogram_matches_numpy(self, source):
        f, _, attrs = source
        counts, edges = attribute_histogram(f, "temp", bins=50)
        ref, ref_edges = np.histogram(attrs["temp"], bins=edges)
        np.testing.assert_array_equal(counts, ref)
        assert counts.sum() <= N  # numpy drops out-of-range values identically

    def test_boxed_histogram(self, source):
        f, pos, attrs = source
        box = Box((0.0, 0.0, 0.0), (0.5, 1.0, 1.0))
        counts, edges = attribute_histogram(f, "rho", bins=10, box=box)
        mask = box.contains_points(pos)
        ref, _ = np.histogram(attrs["rho"][mask], bins=edges)
        np.testing.assert_array_equal(counts, ref)

    def test_filtered_histogram(self, source):
        f, _, attrs = source
        filt = AttributeFilter("temp", 300.0, 1e9)
        counts, edges = attribute_histogram(f, "rho", bins=8, filters=[filt])
        ref, _ = np.histogram(attrs["rho"][attrs["temp"] >= 300.0], bins=edges)
        np.testing.assert_array_equal(counts, ref)

    def test_explicit_range(self, source):
        f, _, _ = source
        counts, edges = attribute_histogram(f, "rho", bins=4, value_range=(0.0, 1.0))
        assert edges[0] == 0.0 and edges[-1] == 1.0
        assert counts.sum() == N

    def test_lod_histogram_approximates(self, source):
        f, _, attrs = source
        full, edges = attribute_histogram(f, "temp", bins=16)
        coarse, _ = attribute_histogram(f, "temp", bins=16, value_range=(edges[0], edges[-1]), quality=0.3)
        # the LOD histogram has the same shape: normalized L1 distance small
        pf = full / full.sum()
        pc = coarse / max(coarse.sum(), 1)
        assert np.abs(pf - pc).sum() < 0.15

    def test_validation(self, source):
        f, _, _ = source
        with pytest.raises(ValueError):
            attribute_histogram(f, "temp", bins=0)
        with pytest.raises(KeyError):
            attribute_histogram(f, "nope")


class TestRegionStatsQuery:
    def test_matches_direct_computation(self, source):
        f, pos, attrs = source
        box = Box((0.25, 0.25, 0.25), (0.75, 0.75, 0.75))
        stats = region_stats(f, ["temp", "rho"], box=box)
        mask = box.contains_points(pos)
        for name in ("temp", "rho"):
            ref = attrs[name][mask]
            assert stats[name].count == mask.sum()
            assert stats[name].mean == pytest.approx(ref.mean())
            assert stats[name].min == pytest.approx(ref.min())
            assert stats[name].max == pytest.approx(ref.max())
            assert stats[name].std == pytest.approx(ref.std(), rel=1e-6)

    def test_unknown_attr_validated_before_scan(self, source):
        f, _, _ = source
        with pytest.raises(KeyError):
            region_stats(f, ["temp", "missing"])

    def test_summary_covers_all_attrs(self, source):
        f, _, attrs = source
        summary = attribute_summary(f)
        assert set(summary) == set(attrs)
        assert all(s.count == N for s in summary.values())


class TestDatasetSource:
    def test_works_on_datasets(self, tmp_path):
        from repro.core import TwoPhaseWriter
        from repro.core.dataset import BATDataset
        from repro.machines import testing_machine
        from tests.test_pipeline import make_rank_data

        data = make_rank_data(nranks=8, seed=44)
        rep = TwoPhaseWriter(testing_machine(), target_size=128 * 1024).write(
            data, out_dir=tmp_path, name="an"
        )
        alltemp = np.concatenate([b.attributes["temp"] for b in data.batches])
        with BATDataset(rep.metadata_path) as ds:
            counts, edges = attribute_histogram(ds, "temp", bins=20)
            ref, _ = np.histogram(alltemp, bins=edges)
            np.testing.assert_array_equal(counts, ref)
            stats = region_stats(ds, ["temp"])
            assert stats["temp"].count == len(alltemp)
            assert stats["temp"].mean == pytest.approx(alltemp.mean())
