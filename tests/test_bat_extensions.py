"""Tests for the §VII BAT extensions: quantization, compression,
equi-depth binning, and in-memory (in-transit) access."""

import numpy as np
import pytest

from repro.bat import AttributeFilter, BATBuildConfig, BATFile, build_bat
from repro.bat.query import query_file
from repro.types import Box, ParticleBatch

N = 40_000


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(21)
    pos = (rng.random((N, 3)) * np.array([3.0, 2.0, 1.0])).astype(np.float32)
    return ParticleBatch(
        pos,
        {
            "skew": np.exp(rng.normal(0.0, 2.0, N)),  # log-normal
            "u": rng.random(N),
        },
    )


def roundtrip(batch, cfg, tmp_path, name):
    built = build_bat(batch, cfg)
    p = tmp_path / f"{name}.bat"
    built.write(p)
    return built, BATFile(p)


class TestQuantizedPositions:
    def test_flag_recorded(self, batch, tmp_path):
        built, f = roundtrip(batch, BATBuildConfig(quantize_positions=True), tmp_path, "q")
        with f:
            assert f.quantized and not f.compressed
            assert built.flags == 1

    def test_smaller_file(self, batch, tmp_path):
        plain = build_bat(batch)
        quant = build_bat(batch, BATBuildConfig(quantize_positions=True))
        # positions shrink from 12 to 6 bytes/particle
        assert plain.nbytes - quant.nbytes > 5 * N

    def test_positions_accurate_to_quantum(self, batch, tmp_path):
        _, f = roundtrip(batch, BATBuildConfig(quantize_positions=True), tmp_path, "qa")
        with f:
            res, _ = query_file(f)
            assert len(res) == N
            # worst case error: one treelet extent / 65535; treelets cover a
            # small fraction of the domain, so 1e-4 absolute is generous
            a = np.sort(res.positions, axis=0)
            b = np.sort(batch.positions, axis=0)
            assert np.abs(a - b).max() < 1e-4

    def test_attributes_lossless(self, batch, tmp_path):
        _, f = roundtrip(batch, BATBuildConfig(quantize_positions=True), tmp_path, "ql")
        with f:
            res, _ = query_file(f)
            np.testing.assert_array_equal(
                np.sort(res.attributes["skew"]), np.sort(batch.attributes["skew"])
            )

    def test_spatial_query_consistent_with_decoded_positions(self, batch, tmp_path):
        _, f = roundtrip(batch, BATBuildConfig(quantize_positions=True), tmp_path, "qs")
        with f:
            full, _ = query_file(f)
            box = Box((0.5, 0.5, 0.2), (2.0, 1.5, 0.8))
            res, _ = query_file(f, box=box)
            assert len(res) == box.contains_points(full.positions).sum()
            assert box.contains_points(res.positions).all()


class TestCompressedTreelets:
    def test_flag_and_roundtrip(self, batch, tmp_path):
        built, f = roundtrip(batch, BATBuildConfig(compress=True), tmp_path, "c")
        with f:
            assert f.compressed and not f.quantized
            res, _ = query_file(f)
            assert len(res) == N
            np.testing.assert_array_equal(
                np.sort(res.positions[:, 0]), np.sort(batch.positions[:, 0])
            )

    def test_compression_shrinks_file(self, batch):
        plain = build_bat(batch)
        comp = build_bat(batch, BATBuildConfig(compress=True))
        assert comp.nbytes < plain.nbytes

    def test_queries_on_compressed(self, batch, tmp_path):
        _, f = roundtrip(batch, BATBuildConfig(compress=True), tmp_path, "cq")
        with f:
            res, _ = query_file(f, filters=[AttributeFilter("u", 0.25, 0.5)])
            u = batch.attributes["u"]
            assert len(res) == ((u >= 0.25) & (u <= 0.5)).sum()

    def test_combined_with_quantization(self, batch, tmp_path):
        cfg = BATBuildConfig(quantize_positions=True, compress=True)
        built, f = roundtrip(batch, cfg, tmp_path, "qc")
        with f:
            assert f.quantized and f.compressed
            res, _ = query_file(f)
            assert len(res) == N
        # the combination gives the smallest file
        assert built.nbytes < build_bat(batch, BATBuildConfig(compress=True)).nbytes

    def test_corrupted_compressed_treelet_detected(self, batch, tmp_path):
        built, f = roundtrip(batch, BATBuildConfig(compress=True), tmp_path, "cc")
        f.close()
        # truncate a compressed payload in-place: decompression must fail
        # loudly rather than return garbage
        import zlib

        data = bytearray(built.data)
        with BATFile.from_bytes(bytes(data)) as ref:
            off = int(ref.shallow_leaves[0]["treelet_offset"])
        data[off + 16 + 10] ^= 0xFF
        with BATFile.from_bytes(bytes(data)) as bad:
            with pytest.raises((ValueError, zlib.error)):
                bad.treelet(0)


class TestEquiDepthBitmaps:
    def test_binning_recorded(self, batch, tmp_path):
        cfg = BATBuildConfig(attribute_binning="equidepth")
        _, f = roundtrip(batch, cfg, tmp_path, "ed")
        with f:
            from repro.binning import EquiDepthBinning

            assert isinstance(f.binnings["skew"], EquiDepthBinning)

    def test_invalid_binning_name(self):
        with pytest.raises(ValueError):
            BATBuildConfig(attribute_binning="magic")

    def test_filters_exact(self, batch, tmp_path):
        cfg = BATBuildConfig(attribute_binning="equidepth")
        _, f = roundtrip(batch, cfg, tmp_path, "edf")
        with f:
            s = batch.attributes["skew"]
            for lo, hi in ((0.0, 1.0), (50.0, 1e9), (0.5, 2.0)):
                res, _ = query_file(f, filters=[AttributeFilter("skew", lo, hi)])
                assert len(res) == ((s >= lo) & (s <= hi)).sum()

    def test_better_pruning_on_skewed_tail_query(self, tmp_path):
        """A top-of-distribution query on a spatially correlated, skewed
        attribute prunes far better with quantile bins."""
        rng = np.random.default_rng(5)
        pos = rng.random((N, 3)).astype(np.float32)
        skew = np.exp(6.0 * pos[:, 0].astype(np.float64))  # correlated + skewed
        batch = ParticleBatch(pos, {"s": skew})
        # bottom decile: a single equi-width bin swallows ~40% of the
        # values here, while quantile bins stay selective
        cut = float(np.quantile(skew, 0.10))
        tested = {}
        for label, cfg in (
            ("equiwidth", BATBuildConfig()),
            ("equidepth", BATBuildConfig(attribute_binning="equidepth")),
        ):
            built = build_bat(batch, cfg)
            p = tmp_path / f"{label}.bat"
            built.write(p)
            with BATFile(p) as f:
                res, st = query_file(f, filters=[AttributeFilter("s", 0.0, cut)])
                assert len(res) == (skew <= cut).sum()
                tested[label] = st.points_tested
        assert tested["equidepth"] < 0.7 * tested["equiwidth"]


class TestInMemoryBAT:
    def test_open_without_disk(self, batch):
        built = build_bat(batch)
        with built.open() as f:
            assert f.path == "<memory>"
            res, _ = query_file(f, quality=0.3)
            assert 0 < len(res) < N

    def test_from_bytes_equals_disk(self, batch, tmp_path):
        built = build_bat(batch)
        p = tmp_path / "disk.bat"
        built.write(p)
        box = Box((0.2, 0.2, 0.2), (1.5, 1.0, 0.8))
        with BATFile(p) as on_disk, BATFile.from_bytes(built.data) as in_mem:
            a, _ = query_file(on_disk, box=box)
            b, _ = query_file(in_mem, box=box)
            np.testing.assert_array_equal(a.positions, b.positions)

    def test_close_is_safe(self, batch):
        f = build_bat(batch).open()
        res, _ = query_file(f)
        f.close()
        f.close()  # idempotent
