"""Tests for the parallel filesystem cost models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iosim import FileSystemSpec, ParallelFileSystem
from repro.machines import stampede2, summit
from repro.machines import testing_machine as make_test_machine

SPEC = FileSystemSpec(
    name="toy",
    peak_write_bw=100e9,
    peak_read_bw=100e9,
    client_bw=1e9,
    target_bw=1e9,
    stripe_count=8,
    create_rate=1000.0,
    open_rate=2000.0,
    shared_writer_overhead=1e-4,
)


@pytest.fixture
def fs():
    return ParallelFileSystem(SPEC)


class TestIndependentWrites:
    def test_zero_writers_free(self, fs):
        out = fs.independent_write(np.zeros(16))
        assert (out == 0).all()

    def test_single_writer_client_limited(self, fs):
        out = fs.independent_write(np.array([1e9]))
        assert out[0] == pytest.approx(1e-3 + 1.0, rel=0.01)  # create + 1GB @ client_bw

    def test_metadata_storm_scales_with_writers(self, fs):
        small = np.full(100, 1e3)
        big = np.full(1000, 1e3)
        t_small = fs.independent_write(small).max()
        t_big = fs.independent_write(big).max()
        assert t_big > t_small * 5  # dominated by creates: 1000 vs 100 @ 1000/s

    def test_aggregate_peak_shared(self, fs):
        # 1000 writers of 1 GB each: aggregate 1 TB at 100 GB/s -> >= 10 s
        out = fs.independent_write(np.full(1000, 1e9))
        assert out.max() >= 10.0

    def test_inactive_writers_unaffected(self, fs):
        sizes = np.array([1e6, 0.0, 1e6])
        out = fs.independent_write(sizes)
        assert out[1] == 0.0
        assert out[0] > 0 and out[2] > 0

    def test_multiple_creates_per_writer(self, fs):
        t1 = fs.independent_write(np.full(10, 1e3), creates_per_writer=1).max()
        t5 = fs.independent_write(np.full(10, 1e3), creates_per_writer=5).max()
        assert t5 > t1

    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=50))
    def test_durations_nonnegative_and_monotone_in_size(self, sizes):
        fs = ParallelFileSystem(SPEC)
        out = fs.independent_write(np.array(sizes))
        assert (out >= 0).all()
        active = np.array(sizes) > 0
        if active.sum() >= 2:
            sub = out[active]
            order = np.argsort(np.array(sizes)[active])
            assert (np.diff(sub[order]) >= -1e-12).all()


class TestSharedFile:
    def test_zero_cases(self, fs):
        assert fs.shared_write(0, 100) == 0.0
        assert fs.shared_write(1e9, 0) == 0.0

    def test_stripe_cap(self, fs):
        # 8 stripes * 1 GB/s = 8 GB/s cap even with many clients
        t = fs.shared_write(80e9, 10_000)
        assert t >= 10.0

    def test_coupling_linear_in_writers(self, fs):
        t1 = fs.shared_write(1e6, 1000)
        t2 = fs.shared_write(1e6, 2000)
        assert t2 - t1 == pytest.approx(1000 * SPEC.shared_writer_overhead, rel=0.05)

    def test_hdf5_meta_factor(self, fs):
        assert fs.shared_write(1e6, 100, meta_factor=3.0) > fs.shared_write(1e6, 100)

    def test_read_uses_read_peak(self):
        spec = FileSystemSpec(
            name="asym", peak_write_bw=10e9, peak_read_bw=100e9, client_bw=50e9,
            target_bw=50e9, stripe_count=8, create_rate=1e4, open_rate=1e4,
            shared_writer_overhead=0.0,
        )
        fs = ParallelFileSystem(spec)
        assert fs.shared_read(100e9, 4) < fs.shared_write(100e9, 4)


class TestSmallFiles:
    def test_small_write(self, fs):
        assert fs.small_write(4096) > 0

    def test_small_read_all_sublinear(self, fs):
        t1 = fs.small_read_all(4096, 100)
        t4 = fs.small_read_all(4096, 400)
        assert t4 < 2.5 * t1  # sqrt scaling, not linear

    def test_small_read_zero_readers(self, fs):
        assert fs.small_read_all(4096, 0) == 0.0


class TestMachinePresets:
    def test_presets_construct(self):
        for m in (stampede2(), summit(), make_test_machine()):
            assert m.fs_model() is not None
            assert m.network.node_bw > 0
            assert m.bat_build_rate > 0

    def test_summit_faster_bat_build(self):
        assert summit().bat_build_rate > stampede2().bat_build_rate

    def test_fpp_degradation_points(self):
        """FPP create storms should overtake payload writes around the
        rank counts where the paper saw degradation (1536 on Stampede2,
        672 on Summit)."""
        per_rank = 4.06e6
        for machine, onset in ((stampede2(), 1536), (summit(), 672)):
            fs = machine.fs_model()
            t = fs.independent_write(np.full(onset, per_rank)).max()
            meta = onset / machine.filesystem.create_rate
            # metadata must be a significant component at the onset scale
            assert meta / t > 0.3

    def test_stampede2_shared_file_stripe_capped(self):
        fs = stampede2().fs_model()
        spec = stampede2().filesystem
        t = fs.shared_write(1e12, 100_000)
        assert t >= 1e12 / (spec.stripe_count * spec.target_bw) * 0.99
