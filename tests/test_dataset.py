"""Tests for whole-dataset visualization reads (BATDataset)."""

import numpy as np
import pytest

from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine as make_test_machine
from repro.types import Box
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    data = make_rank_data(nranks=16, seed=7)
    out = tmp_path_factory.mktemp("ds")
    writer = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024)
    report = writer.write(data, out_dir=out, name="vis")
    ds = BATDataset(report.metadata_path)
    allpos = np.concatenate([b.positions for b in data.batches])
    allmass = np.concatenate([b.attributes["mass"] for b in data.batches])
    alltemp = np.concatenate([b.attributes["temp"] for b in data.batches])
    yield ds, allpos, allmass, alltemp
    ds.close()


class TestStructure:
    def test_counts(self, dataset):
        ds, allpos, _, _ = dataset
        assert ds.total_particles == len(allpos)
        assert ds.n_files > 1

    def test_global_ranges(self, dataset):
        ds, _, allmass, alltemp = dataset
        lo, hi = ds.attr_ranges["mass"]
        assert lo <= allmass.min() and hi >= allmass.max()
        lo, hi = ds.attr_ranges["temp"]
        assert lo == pytest.approx(alltemp.min())
        assert hi == pytest.approx(alltemp.max())

    def test_files_cached(self, dataset):
        ds = dataset[0]
        assert ds.file(0) is ds.file(0)


class TestQueries:
    def test_full_query(self, dataset):
        ds, allpos, _, _ = dataset
        batch, stats = ds.query()
        assert len(batch) == len(allpos)
        assert stats.points_returned == len(allpos)

    def test_spatial_across_files(self, dataset):
        ds, allpos, _, _ = dataset
        box = Box((0.5, 0.5, 0.0), (2.5, 3.5, 1.0))
        batch, _ = ds.query(box=box)
        assert len(batch) == box.contains_points(allpos).sum()
        assert box.contains_points(batch.positions).all()

    def test_metadata_prunes_files(self, dataset):
        ds, _, _, _ = dataset
        # a tiny corner box should touch few leaf files
        box = Box((0.0, 0.0, 0.0), (0.3, 0.3, 0.3))
        candidates = ds._candidate_leaves(box, ())
        assert len(candidates) < ds.n_files

    def test_attribute_filter_global(self, dataset):
        ds, _, allmass, _ = dataset
        batch, _ = ds.query(filters=[AttributeFilter("mass", 0.8, 1.0)])
        assert len(batch) == (allmass >= 0.8).sum()
        assert (batch.attributes["mass"] >= 0.8).all()

    def test_filter_pruning_via_global_bitmaps(self, dataset):
        ds, _, _, alltemp = dataset
        # temperatures are ~N(300, 30); a far-out range matches nothing and
        # should prune every leaf without opening files
        hits = ds._candidate_leaves(None, (AttributeFilter("temp", 10_000.0, 20_000.0),))
        assert hits == []
        batch, stats = ds.query(filters=[AttributeFilter("temp", 10_000.0, 20_000.0)])
        assert len(batch) == 0

    def test_progressive_partition(self, dataset):
        ds, allpos, _, _ = dataset
        total, prev = 0, 0.0
        for q in (0.25, 0.5, 0.75, 1.0):
            batch, _ = ds.query(quality=q, prev_quality=prev)
            total += len(batch)
            prev = q
        assert total == len(allpos)

    def test_coarse_query_spans_domain(self, dataset):
        ds, allpos, _, _ = dataset
        batch, _ = ds.query(quality=0.1)
        assert 0 < len(batch) < len(allpos)
        ext = batch.positions.max(axis=0) - batch.positions.min(axis=0)
        full = allpos.max(axis=0) - allpos.min(axis=0)
        assert (ext > 0.6 * full).all()

    def test_callback_mode(self, dataset):
        ds, allpos, _, _ = dataset
        got = []
        out, stats = ds.query(callback=lambda p, a: got.append(len(p)))
        assert out is None
        assert sum(got) == len(allpos)

    def test_combined_query(self, dataset):
        ds, allpos, allmass, _ = dataset
        box = Box((1.0, 1.0, 0.0), (3.0, 3.0, 1.0))
        batch, _ = ds.query(box=box, filters=[AttributeFilter("mass", 0.0, 0.5)])
        mask = box.contains_points(allpos) & (allmass <= 0.5)
        assert len(batch) == mask.sum()

    def test_empty_result_keeps_specs(self, dataset):
        ds, _, _, _ = dataset
        batch, _ = ds.query(box=Box((50, 50, 50), (51, 51, 51)))
        assert len(batch) == 0
        assert set(batch.attributes) == {"mass", "temp"}

    def test_context_manager(self, dataset, tmp_path):
        ds = dataset[0]
        with BATDataset(ds.metadata_path) as d2:
            b, _ = d2.query(quality=0.2)
            assert len(b) > 0
