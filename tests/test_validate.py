"""Tests for BAT integrity validation, including corruption injection."""

import struct

import numpy as np
import pytest

from repro.bat import BATBuildConfig, build_bat
from repro.bat.validate import validate_dataset, validate_file
from repro.core import TwoPhaseWriter
from repro.machines import testing_machine as make_test_machine
from repro.types import ParticleBatch
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def good_file(tmp_path_factory):
    rng = np.random.default_rng(88)
    batch = ParticleBatch(
        rng.random((30_000, 3)).astype(np.float32),
        {"a": rng.random(30_000), "b": rng.normal(0, 1, 30_000)},
    )
    built = build_bat(batch)
    p = tmp_path_factory.mktemp("val") / "good.bat"
    built.write(p)
    return p, built


class TestValidFiles:
    def test_good_file_passes(self, good_file):
        p, _ = good_file
        report = validate_file(p)
        assert report.ok, report.summary()
        assert report.checks > 100

    def test_shallow_only_mode(self, good_file):
        p, _ = good_file
        shallow = validate_file(p, deep=False)
        deep = validate_file(p, deep=True)
        assert shallow.ok
        assert shallow.checks < deep.checks

    def test_quantized_compressed_pass(self, tmp_path):
        rng = np.random.default_rng(89)
        batch = ParticleBatch(
            rng.random((10_000, 3)).astype(np.float32), {"x": rng.random(10_000)}
        )
        built = build_bat(batch, BATBuildConfig(quantize_positions=True, compress=True))
        p = tmp_path / "qc.bat"
        built.write(p)
        assert validate_file(p).ok

    def test_summary_format(self, good_file):
        p, _ = good_file
        s = validate_file(p).summary()
        assert "OK" in s and "checks" in s


@pytest.fixture(scope="module")
def legacy_file(tmp_path_factory):
    """A legacy (version-2, no checksums) image for the structural checks.

    On a checksummed file the CRCs catch these corruptions before the
    structural invariants are even consulted; the legacy image keeps the
    fsck-style checks themselves under test.
    """
    rng = np.random.default_rng(88)
    batch = ParticleBatch(
        rng.random((30_000, 3)).astype(np.float32),
        {"a": rng.random(30_000), "b": rng.normal(0, 1, 30_000)},
    )
    built = build_bat(batch, BATBuildConfig(checksums=False))
    p = tmp_path_factory.mktemp("val_legacy") / "legacy.bat"
    built.write(p)
    return p, built


def corrupt(data: bytes, offset: int, new: bytes) -> bytes:
    out = bytearray(data)
    out[offset : offset + len(new)] = new
    return bytes(out)


class TestCorruptionDetection:
    def test_bad_magic(self, good_file, tmp_path):
        p, built = good_file
        bad = tmp_path / "magic.bat"
        bad.write_bytes(corrupt(built.data, 0, b"EVIL"))
        report = validate_file(bad)
        assert not report.ok
        assert "cannot open" in report.errors[0]

    def test_truncated_file(self, good_file, tmp_path):
        p, built = good_file
        bad = tmp_path / "trunc.bat"
        bad.write_bytes(built.data[: len(built.data) // 2])
        assert not validate_file(bad).ok

    def test_corrupt_point_count(self, legacy_file, tmp_path):
        p, built = legacy_file
        # n_points lives at offset 8 in the header
        bad = tmp_path / "count.bat"
        bad.write_bytes(corrupt(built.data, 8, struct.pack("<Q", 999)))
        report = validate_file(bad)
        assert not report.ok
        assert any("point counts" in e or "zero particles" in e for e in report.errors)

    def test_corrupt_header_checksummed(self, good_file, tmp_path):
        p, built = good_file
        # on a checksummed file the same header damage trips the header CRC
        bad = tmp_path / "count_v3.bat"
        bad.write_bytes(corrupt(built.data, 8, struct.pack("<Q", 999)))
        report = validate_file(bad)
        assert not report.ok
        assert "cannot open" in report.errors[0]
        assert "checksum" in report.errors[0]

    def test_corrupt_treelet_child_pointer(self, legacy_file, tmp_path):
        p, built = legacy_file
        from repro.bat.file import BATFile

        with BATFile(p) as f:
            # find a treelet with an inner node and smash its left pointer
            target = None
            for k in range(f.n_treelets):
                tv = f.treelet(k)
                inner = np.nonzero(tv.nodes["axis"] >= 0)[0]
                if len(inner):
                    off = int(f.shallow_leaves[k]["treelet_offset"])
                    node_dt = tv.nodes.dtype
                    node_off = off + 16 + int(inner[0]) * node_dt.itemsize
                    left_field_off = node_dt.fields["left"][1]
                    target = node_off + left_field_off
                    break
        assert target is not None
        bad = tmp_path / "child.bat"
        bad.write_bytes(corrupt(built.data, target, struct.pack("<i", -7)))
        report = validate_file(bad)
        assert not report.ok
        assert any("children" in e for e in report.errors)

    def test_corrupt_positions_detected(self, legacy_file, tmp_path):
        p, built = legacy_file
        from repro.bat.file import BATFile

        with BATFile(p) as f:
            off = int(f.shallow_leaves[0]["treelet_offset"])
            tv = f.treelet(0)
            pos_off = off + 16 + tv.nodes.nbytes
        bad = tmp_path / "pos.bat"
        bad.write_bytes(corrupt(built.data, pos_off, struct.pack("<f", 1e9)))
        report = validate_file(bad)
        assert not report.ok
        assert any("outside leaf bounds" in e for e in report.errors)


class TestDatasetValidation:
    @pytest.fixture(scope="class")
    def dataset(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("ds_val")
        data = make_rank_data(nranks=8, seed=90)
        rep = TwoPhaseWriter(make_test_machine(), target_size=256 * 1024).write(
            data, out_dir=out, name="v0"
        )
        return out, rep

    def test_good_dataset(self, dataset):
        out, rep = dataset
        report = validate_dataset(rep.metadata_path, deep=True)
        assert report.ok, report.summary()

    def test_missing_leaf_file(self, dataset, tmp_path):
        import shutil

        out, rep = dataset
        clone = tmp_path / "clone"
        shutil.copytree(out, clone)
        victim = next(clone.glob("*.bat"))
        victim.unlink()
        report = validate_dataset(clone / "v0.meta.json")
        assert not report.ok
        assert any("missing leaf file" in e for e in report.errors)

    def test_manifest_count_mismatch(self, dataset, tmp_path):
        import json
        import shutil

        out, rep = dataset
        clone = tmp_path / "clone2"
        shutil.copytree(out, clone)
        meta = json.loads((clone / "v0.meta.json").read_text())
        meta["leaves"][0]["count"] += 5
        (clone / "v0.meta.json").write_text(json.dumps(meta))
        report = validate_dataset(clone / "v0.meta.json")
        assert not report.ok
        assert any("manifest says" in e for e in report.errors)

    def test_cli_validate(self, dataset, capsys):
        from repro.cli import main

        out, rep = dataset
        assert main(["validate", rep.metadata_path]) == 0
        assert "OK" in capsys.readouterr().out
