"""Tests for the discrete-event network simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import testing_machine as make_test_machine
from repro.simmpi import Message, NetworkSpec, VirtualCluster, transfer_phase
from repro.simmpi.eventsim import max_min_rates, simulate_transfers

SPEC = NetworkSpec(node_bw=1e9, latency=1e-6, ranks_per_node=4)


class TestMaxMinRates:
    def test_single_flow_full_rate(self):
        rates = max_min_rates([(("tx", 0), ("rx", 1))], {("tx", 0): 1e9, ("rx", 1): 1e9})
        assert rates == [1e9]

    def test_shared_receiver_splits_evenly(self):
        flows = [(("tx", 0), ("rx", 9)), (("tx", 1), ("rx", 9))]
        caps = {("tx", 0): 1e9, ("tx", 1): 1e9, ("rx", 9): 1e9}
        assert max_min_rates(flows, caps) == [5e8, 5e8]

    def test_asymmetric_bottleneck(self):
        # flow A shares its tx with nothing but its rx with B; B's tx is slow
        flows = [(("tx", 0), ("rx", 2)), (("tx", 1), ("rx", 2))]
        caps = {("tx", 0): 1e9, ("tx", 1): 2e8, ("rx", 2): 1e9}
        rates = max_min_rates(flows, caps)
        assert rates[1] == pytest.approx(2e8)
        assert rates[0] == pytest.approx(8e8)  # picks up the slack

    def test_no_capacity_exceeded(self):
        rng = np.random.default_rng(0)
        flows = [(("tx", int(rng.integers(4))), ("rx", int(rng.integers(4)))) for _ in range(20)]
        caps = {}
        for a, b in flows:
            caps[a] = 1e9
            caps[b] = 1e9
        rates = max_min_rates(flows, caps)
        used = {}
        for (a, b), r in zip(flows, rates):
            used[a] = used.get(a, 0) + r
            used[b] = used.get(b, 0) + r
        for res, total in used.items():
            assert total <= caps[res] * (1 + 1e-9)


class TestSimulateTransfers:
    def test_empty(self):
        clocks = np.array([1.0, 2.0])
        np.testing.assert_array_equal(simulate_transfers([], clocks, SPEC), clocks)

    def test_single_message_matches_phase_model(self):
        msgs = [Message(0, 4, 1e9)]
        ev = simulate_transfers(msgs, np.zeros(8), SPEC)
        ph = transfer_phase(msgs, np.zeros(8), SPEC)
        assert ev[4] == pytest.approx(ph[4], rel=0.01)

    def test_incast_matches_phase_model(self):
        msgs = [Message(4 * i, 3, 1e8) for i in range(1, 4)]
        ev = simulate_transfers(msgs, np.zeros(16), SPEC)
        ph = transfer_phase(msgs, np.zeros(16), SPEC)
        assert ev[3] == pytest.approx(ph[3], rel=0.05)

    def test_self_message(self):
        out = simulate_transfers([Message(2, 2, 1e9)], np.zeros(4), SPEC)
        assert out[2] == pytest.approx(1.0, rel=0.01)

    def test_staggered_start_beats_phase_model(self):
        """A flow that finishes before a late flow starts never contends —
        the effect the phase model cannot represent."""
        clocks = np.zeros(16)
        clocks[8] = 0.5
        msgs = [Message(4, 3, 2e8), Message(8, 3, 2e8)]
        ev = simulate_transfers(msgs, clocks, SPEC)
        ph = transfer_phase(msgs, clocks, SPEC)
        assert ev[3] == pytest.approx(0.7, abs=0.01)  # 0.2s alone, then 0.5->0.7
        assert ev[3] < ph[3]

    def test_completion_order_by_size(self):
        # two flows into different receivers from one node: both share tx,
        # the smaller finishes first and the bigger then speeds up
        msgs = [Message(0, 4, 1e8), Message(1, 8, 3e8)]
        ev = simulate_transfers(msgs, np.zeros(12), SPEC)
        assert ev[4] < ev[8]
        # total completion: 4e8 bytes through one 1e9 NIC -> 0.4 s
        assert ev[8] == pytest.approx(0.4, rel=0.02)

    def test_bisection_floor(self):
        spec = NetworkSpec(node_bw=1e9, latency=1e-6, ranks_per_node=1, bisection_bw=1e8)
        msgs = [Message(0, 1, 1e8), Message(2, 3, 1e8)]
        out = simulate_transfers(msgs, np.zeros(4), spec)
        assert out[1] >= 2.0  # total/bisection = 2e8/1e8

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11), st.integers(1, 10**7)),
            min_size=1,
            max_size=15,
        )
    )
    def test_never_faster_than_receiver_capacity(self, triples):
        msgs = [Message(s, d, b) for s, d, b in triples]
        clocks = np.zeros(12)
        out = simulate_transfers(msgs, clocks, SPEC)
        assert (out >= clocks).all()
        # each receiver node cannot ingest faster than its NIC: the last
        # completion at a node is at least its total bytes / node_bw
        node_in = {}
        for m in msgs:
            if m.src == m.dst:
                continue
            node = m.dst // SPEC.ranks_per_node
            node_in[node] = node_in.get(node, 0) + m.nbytes
        for node, total in node_in.items():
            ranks = [m.dst for m in msgs if m.src != m.dst and m.dst // SPEC.ranks_per_node == node]
            assert max(out[r] for r in ranks) >= total / SPEC.node_bw - 1e-9


class TestClusterIntegration:
    def test_invalid_model(self):
        with pytest.raises(ValueError, match="network_model"):
            VirtualCluster(4, make_test_machine(), network_model="quantum")

    def test_event_model_usable_end_to_end(self):
        vc = VirtualCluster(8, make_test_machine(), network_model="event")
        vc.p2p("transfer", [Message(i, 0, 10**6) for i in range(1, 8)])
        assert vc.elapsed > 0

    def test_models_agree_on_synchronized_incast(self):
        m = make_test_machine()
        msgs = [Message(i, 0, 10**7) for i in range(1, 16)]
        a = VirtualCluster(16, m, network_model="phase")
        b = VirtualCluster(16, m, network_model="event")
        a.p2p("t", msgs)
        b.p2p("t", msgs)
        assert b.elapsed == pytest.approx(a.elapsed, rel=0.15)
