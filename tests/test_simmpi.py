"""Tests for the virtual-MPI substrate: network, collectives, timeline, cluster."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import testing_machine as make_test_machine
from repro.simmpi import Message, NetworkSpec, Timeline, VirtualCluster, transfer_phase
from repro.simmpi.collectives import (
    barrier_time,
    bcast_time,
    gather_time,
    scatter_time,
)

SPEC = NetworkSpec(node_bw=1e9, latency=1e-6, ranks_per_node=4)


class TestTransferPhase:
    def test_no_messages_keeps_clocks(self):
        clocks = np.array([1.0, 2.0, 3.0])
        out = transfer_phase([], clocks, SPEC)
        np.testing.assert_array_equal(out, clocks)

    def test_single_message_time(self):
        clocks = np.zeros(8)
        out = transfer_phase([Message(0, 4, 1e9)], clocks, SPEC)
        # 1 GB at 1 GB/s node bw (sole user of both NICs) ~ 1 s + latency
        assert out[0] == pytest.approx(1.0, rel=0.01)
        assert out[4] == pytest.approx(1.0, rel=0.01)
        # uninvolved ranks unchanged
        assert out[1] == 0.0

    def test_incast_shares_receiver_nic(self):
        clocks = np.zeros(16)
        # 8 senders on distinct nodes -> one receiver: receiver NIC is the
        # bottleneck, so time ~ total bytes / node_bw.
        msgs = [Message(4 * i, 3, 1e8) for i in range(1, 4)]
        out = transfer_phase(msgs, clocks, SPEC)
        assert out[3] == pytest.approx(3e8 / 1e9, rel=0.05)

    def test_node_sharing_slows_senders(self):
        clocks = np.zeros(8)
        # ranks 0..3 share a node; all send 1e8 to distinct remote ranks
        msgs = [Message(i, 4 + i, 1e8) for i in range(4)]
        out = transfer_phase(msgs, clocks, SPEC)
        # node NIC carries 4e8 bytes -> 0.4 s for each sender
        assert out[0] == pytest.approx(0.4, rel=0.05)

    def test_self_message_is_memcpy(self):
        clocks = np.zeros(4)
        out = transfer_phase([Message(2, 2, 1e9)], clocks, SPEC)
        assert out[2] == pytest.approx(1.0, rel=0.01)

    def test_starts_after_latest_participant(self):
        clocks = np.array([5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        out = transfer_phase([Message(0, 4, 1e9)], clocks, SPEC)
        assert out[4] >= 6.0

    def test_bisection_floor(self):
        spec = NetworkSpec(node_bw=1e9, latency=1e-6, ranks_per_node=1, bisection_bw=1e8)
        clocks = np.zeros(4)
        out = transfer_phase([Message(0, 1, 1e8), Message(2, 3, 1e8)], clocks, spec)
        assert out[1] >= 2e8 / 1e8  # total/bisection

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15), st.integers(1, 10**7)), max_size=20))
    def test_clocks_never_regress(self, triples):
        msgs = [Message(s, d, b) for s, d, b in triples]
        clocks = np.linspace(0, 1, 16)
        out = transfer_phase(msgs, clocks, SPEC)
        assert (out >= clocks - 1e-12).all()


class TestCollectives:
    def test_gather_scales_with_total_bytes(self):
        t1 = gather_time(64, 1000, SPEC)
        t2 = gather_time(64, 2000, SPEC)
        assert t2 > t1
        assert t2 == pytest.approx(2 * t1, rel=0.3)

    def test_single_rank_free(self):
        assert gather_time(1, 1000, SPEC) == pytest.approx(1000 / SPEC.node_bw)
        assert barrier_time(1, SPEC) == 0.0

    def test_scatter_symmetric_to_gather(self):
        assert scatter_time(128, 64, SPEC) == gather_time(128, 64, SPEC)

    def test_bcast_log_scaling(self):
        t64 = bcast_time(64, 1e6, SPEC)
        t4096 = bcast_time(4096, 1e6, SPEC)
        assert t4096 == pytest.approx(2 * t64, rel=0.01)

    def test_barrier_log_rounds(self):
        assert barrier_time(1024, SPEC) == pytest.approx(10 * SPEC.latency)


class TestTimeline:
    def test_elapsed_tracks_max(self):
        tl = Timeline(4)
        tl.add_per_rank("a", np.array([1.0, 2.0, 0.0, 0.5]))
        assert tl.elapsed == 2.0

    def test_backwards_clock_rejected(self):
        tl = Timeline(2)
        tl.add_uniform("a", 1.0)
        with pytest.raises(ValueError, match="backwards"):
            tl.record("bad", np.array([0.5, 0.5]))

    def test_negative_duration_rejected(self):
        tl = Timeline(2)
        with pytest.raises(ValueError):
            tl.add_uniform("a", -1.0)
        with pytest.raises(ValueError):
            tl.add_per_rank("b", np.array([1.0, -0.1]))

    def test_root_compute_synchronizes(self):
        tl = Timeline(4)
        tl.add_root("tree", 2.0)
        assert (tl.clocks == 2.0).all()

    def test_breakdown_merges_phases(self):
        tl = Timeline(2)
        tl.add_uniform("io", 1.0)
        tl.add_uniform("net", 0.5)
        tl.add_uniform("io", 0.25)
        bd = tl.breakdown()
        assert bd["io"] == pytest.approx(1.25)
        assert bd["net"] == pytest.approx(0.5)

    def test_breakdown_sums_to_elapsed(self):
        tl = Timeline(8)
        rng = np.random.default_rng(0)
        for i in range(5):
            tl.add_per_rank(f"p{i}", rng.random(8))
        assert sum(tl.breakdown().values()) == pytest.approx(tl.elapsed)

    def test_synchronize_not_logged(self):
        tl = Timeline(3)
        tl.add_per_rank("a", np.array([1.0, 0.0, 0.0]))
        tl.synchronize()
        assert len(tl.phases) == 1
        assert (tl.clocks == 1.0).all()


class TestVirtualCluster:
    def test_pipeline_phases_accumulate(self):
        vc = VirtualCluster(8, make_test_machine())
        vc.gather_to_root("gather", 56)
        vc.root_compute("tree", 0.01)
        vc.scatter_from_root("scatter", 16)
        vc.p2p("transfer", [Message(i, 0, 10**6) for i in range(1, 8)])
        vc.compute("bat", np.full(8, 0.005))
        vc.write_independent("write", np.array([8e6] + [0.0] * 7))
        vc.root_small_write("metadata", 4096)
        assert vc.elapsed > 0
        names = [p.name for p in vc.phases]
        assert names == ["gather", "tree", "scatter", "transfer", "bat", "write", "metadata"]
        assert sum(vc.breakdown().values()) == pytest.approx(vc.elapsed)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            VirtualCluster(0, make_test_machine())

    def test_shared_write_slower_with_more_writers(self):
        t = []
        for n in (16, 256):
            vc = VirtualCluster(n, make_test_machine())
            vc.write_shared("w", 1e9)
            t.append(vc.elapsed)
        assert t[1] > t[0]

    def test_independent_write_metadata_storm(self):
        """With many writers, create cost dominates small writes."""
        m = make_test_machine(create_rate=100.0)
        vc = VirtualCluster(512, m)
        vc.write_independent("w", np.full(512, 1e4))
        assert vc.elapsed > 512 / 100.0 * 0.99
