"""Tests for the end-to-end write-path integrity chain.

Covers the checksummed format (v3) against its legacy predecessor, the
atomic/verified publish protocol, fault-injected writes recovering to
byte-identical files, read-side quarantine with degraded partial results,
the serve layer's integrity counters, and the ``repro scrub`` CLI.
"""

import gc
import hashlib
import json
import os
import re
import zlib

import numpy as np
import pytest

from repro.atomic import atomic_write_bytes, publish_bytes
from repro.bat import BATBuildConfig, build_bat, scrub_dataset, scrub_file
from repro.bat.file import BATFile
from repro.bat.format import HEADER_SIZE, LEGACY_VERSION, VERSION, Header
from repro.bat.query import AttributeFilter, query_file
from repro.cli import main
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.errors import IntegrityError, LeafUnavailableError, PublishError
from repro.iosim import FaultConfig, FaultInjector
from repro.machines import testing_machine as make_test_machine
from repro.serve import QueryService
from repro.types import ParticleBatch
from tests.test_pipeline import make_rank_data


def make_batch(seed=11, n=30_000):
    rng = np.random.default_rng(seed)
    return ParticleBatch(
        rng.random((n, 3)).astype(np.float32),
        {"a": rng.random(n), "b": rng.normal(0, 1, n)},
    )


@pytest.fixture(scope="module")
def checksummed(tmp_path_factory):
    built = build_bat(make_batch())
    p = tmp_path_factory.mktemp("v3") / "good.bat"
    built.write(p)
    return p


@pytest.fixture(scope="module")
def legacy(tmp_path_factory):
    built = build_bat(make_batch(), BATBuildConfig(checksums=False))
    p = tmp_path_factory.mktemp("v2") / "legacy.bat"
    built.write(p)
    return p


def open_fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


METADATA_SECTIONS = (
    "header", "attr_table", "shallow_inner", "shallow_leaves",
    "dictionary", "binning",
)


class TestFormatVersions:
    def test_new_files_are_checksummed(self, checksummed):
        with BATFile(checksummed) as f:
            assert f.checksummed
            assert f.version == VERSION

    def test_legacy_files_still_readable(self, legacy):
        with BATFile(legacy) as f:
            assert not f.checksummed
            assert f.version == LEGACY_VERSION
            assert f.n_points == 30_000

    def test_legacy_query_results_pinned(self, checksummed, legacy):
        """Same particles, both formats: byte-identical query answers."""
        with BATFile(checksummed) as f3, BATFile(legacy) as f2:
            new, _ = query_file(f3, quality=1.0)
            old, _ = query_file(f2, quality=1.0)
        np.testing.assert_array_equal(new.positions, old.positions)
        for name in new.attributes:
            np.testing.assert_array_equal(new.attributes[name], old.attributes[name])

    def test_scrub_statuses(self, checksummed, legacy):
        assert scrub_file(checksummed).status == "ok"
        assert scrub_file(legacy).status == "legacy"
        assert scrub_file(legacy).ok


class TestSectionLocalization:
    """One flipped byte per section: scrub and open name the exact section."""

    @pytest.mark.parametrize("section", METADATA_SECTIONS)
    def test_metadata_section_flip(self, checksummed, tmp_path, section):
        raw = bytearray(checksummed.read_bytes())
        header = Header.unpack(bytes(raw[:HEADER_SIZE]))
        off, nbytes = header.section_extents()[section]
        assert nbytes > 0, f"section {section} is empty in this fixture"
        # a seeded draw per section keeps the property-style coverage
        # reproducible while not always hitting the same byte
        rng = np.random.default_rng(zlib.crc32(section.encode()))
        raw[off + int(rng.integers(nbytes))] ^= 0xFF
        p = tmp_path / f"{section}.bat"
        p.write_bytes(bytes(raw))

        report = scrub_file(p)
        assert not report.ok
        assert section in report.bad_sections, report.summary()
        if section == "header":
            # offsets are untrusted after a header flip; nothing else may
            # be blamed on guesswork
            assert report.bad_sections == ["header"]

        with pytest.raises(IntegrityError) as exc_info:
            BATFile(p)
        assert exc_info.value.section == section

    def test_treelet_flip(self, checksummed, tmp_path):
        raw = bytearray(checksummed.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        p = tmp_path / "treelet.bat"
        p.write_bytes(bytes(raw))

        report = scrub_file(p)
        assert not report.ok
        assert len(report.bad_sections) == 1
        assert re.fullmatch(r"treelet \d+", report.bad_sections[0])
        bad = int(report.bad_sections[0].split()[1])

        # metadata sections verify eagerly, so the file still opens;
        # touching the damaged treelet raises with the same section
        with BATFile(p) as f:
            for k in range(f.n_treelets):
                if k == bad:
                    with pytest.raises(IntegrityError) as exc_info:
                        f.treelet(k)
                    assert exc_info.value.section == f"treelet {bad}"
                else:
                    f.treelet(k)

    def test_integrity_error_is_value_error(self):
        assert issubclass(IntegrityError, ValueError)


class TestCorruptOpenHygiene:
    def test_short_garbage_is_clean_error(self, tmp_path):
        p = tmp_path / "short.bat"
        p.write_bytes(b"definitely not a BAT file")
        with pytest.raises(ValueError, match="not a BAT file"):
            BATFile(p)

    def test_empty_file_is_clean_error(self, tmp_path):
        p = tmp_path / "empty.bat"
        p.write_bytes(b"")
        with pytest.raises(ValueError, match="not a BAT file"):
            BATFile(p)

    @pytest.mark.parametrize("payload", [b"X" * 40, b"BATF" + b"\0" * 300])
    def test_no_fd_leak_on_failed_open(self, tmp_path, payload):
        """A failing ``_parse`` must release the fd and mmap (regression)."""
        p = tmp_path / "corrupt.bat"
        p.write_bytes(payload)
        with pytest.raises(ValueError):
            BATFile(p)
        # flush stray garbage from earlier tests so a finalizer closing an
        # unrelated fd mid-loop cannot skew the count
        gc.collect()
        before = open_fd_count()
        for _ in range(100):
            with pytest.raises(ValueError):
                BATFile(p)
        assert open_fd_count() == before


class TestAtomicPublish:
    def test_atomic_write(self, tmp_path):
        p = tmp_path / "out.bin"
        atomic_write_bytes(p, b"hello")
        assert p.read_bytes() == b"hello"
        assert [q.name for q in tmp_path.iterdir()] == ["out.bin"]

    def test_publish_clean_first_try(self, tmp_path):
        p = tmp_path / "f.bin"
        assert publish_bytes(p, b"payload" * 100) == 1
        assert p.read_bytes() == b"payload" * 100

    @pytest.mark.parametrize("fault", [("torn", 0.5), ("bitflip", 0.25)])
    def test_publish_recovers_from_damaged_attempt(self, tmp_path, fault):
        p = tmp_path / "f.bin"
        data = os.urandom(4096)
        attempts = publish_bytes(p, data, fault_plan=(fault,), max_attempts=4)
        assert attempts == 2
        assert p.read_bytes() == data
        assert [q.name for q in tmp_path.iterdir()] == ["f.bin"]

    def test_publish_failure_leaves_previous_version(self, tmp_path):
        p = tmp_path / "f.bin"
        publish_bytes(p, b"version one")
        plan = (("torn", 0.5), ("torn", 0.5))
        with pytest.raises(PublishError):
            publish_bytes(p, b"version two!", fault_plan=plan, max_attempts=2)
        # the old version is fully intact and no tmp file is visible
        assert p.read_bytes() == b"version one"
        assert [q.name for q in tmp_path.iterdir()] == ["f.bin"]

    def test_publish_never_exposes_partial_file(self, tmp_path):
        p = tmp_path / "f.bin"
        with pytest.raises(PublishError):
            publish_bytes(p, b"data", fault_plan=(("torn", 0.1),), max_attempts=1)
        assert not p.exists()
        assert list(tmp_path.iterdir()) == []


class TestFaultInjector:
    def test_plans_are_deterministic_and_bounded(self):
        cfg = FaultConfig(seed=5, torn_write=0.5, bit_flip=0.4)
        inj = FaultInjector(cfg)
        plans = [inj.plan_leaf_write(i) for i in range(64)]
        assert plans == [inj.plan_leaf_write(i) for i in range(64)]
        # always_recover reserves the final attempt, so every plan leaves
        # at least one clean attempt inside the budget
        assert all(len(p) < cfg.max_write_attempts for p in plans)
        assert any(p for p in plans)

    def test_at_least_one_aggregator_survives(self):
        inj = FaultInjector(FaultConfig(seed=1, aggregator_death=1.0))
        dead = inj.sample_dead_aggregators([0, 1, 2, 3])
        assert len(dead) == 3

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(torn_write=1.5)
        with pytest.raises(ValueError):
            FaultConfig(drop_message=0.7, duplicate_message=0.7)
        with pytest.raises(ValueError):
            FaultConfig(max_write_attempts=0)


class TestFaultedWrites:
    FAULTS = FaultConfig(
        seed=0, torn_write=0.4, bit_flip=0.3, drop_message=0.2,
        duplicate_message=0.1, aggregator_death=0.25,
    )

    def write(self, out, faults):
        data = make_rank_data(nranks=8, seed=21)
        writer = TwoPhaseWriter(
            make_test_machine(), target_size=32 * 1024, faults=faults
        )
        rep = writer.write(data, out_dir=out, name="ft")
        hashes = {
            p.name: hashlib.sha256(p.read_bytes()).hexdigest()
            for p in sorted(out.glob("ft.*.bat"))
        }
        return rep, hashes

    def test_recovery_is_byte_identical(self, tmp_path):
        clean_rep, clean_hashes = self.write(tmp_path / "clean", None)
        fault_rep, fault_hashes = self.write(tmp_path / "faulted", self.FAULTS)
        assert clean_rep.faults is None
        assert fault_rep.faults is not None
        assert fault_rep.faults.total_injected > 0
        assert fault_rep.faults.retried_writes > 0
        assert fault_hashes == clean_hashes
        # recovery work is charged to the simulated clock
        assert fault_rep.elapsed > clean_rep.elapsed
        assert not [p.name for p in (tmp_path / "faulted").iterdir() if ".tmp" in p.name]
        assert scrub_dataset(fault_rep.metadata_path).ok

    def test_faulted_write_is_reproducible(self, tmp_path):
        rep1, _ = self.write(tmp_path / "a", self.FAULTS)
        rep2, _ = self.write(tmp_path / "b", self.FAULTS)
        assert rep1.faults.to_doc() == rep2.faults.to_doc()

    def test_all_zero_config_means_no_injection(self, tmp_path):
        rep, _ = self.write(tmp_path / "z", FaultConfig())
        assert rep.faults is None


@pytest.fixture()
def written_dataset(tmp_path):
    data = make_rank_data(nranks=8, seed=33)
    rep = TwoPhaseWriter(make_test_machine(), target_size=32 * 1024).write(
        data, out_dir=tmp_path, name="dg"
    )
    return tmp_path, rep


def corrupt_leaf(directory, metadata, leaf_index):
    p = directory / metadata.leaves[leaf_index].file_name
    raw = bytearray(p.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    p.write_bytes(bytes(raw))
    return p


class TestQuarantineAndDegradedReads:
    def test_missing_leaf_raises_clear_error(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            victim = ds.metadata.leaves[0]
            (out / victim.file_name).unlink()
            with pytest.raises(LeafUnavailableError) as exc_info:
                ds.query()
            msg = str(exc_info.value)
            assert victim.file_name in msg and "dg.meta.json" in msg
            assert exc_info.value.leaf_index == 0

    def test_corrupt_leaf_raises_clear_error(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            corrupt_leaf(out, ds.metadata, 1)
            with pytest.raises(IntegrityError, match="dg.00001"):
                ds.query()
            # raise mode does not quarantine
            assert ds.quarantined() == {}

    def test_degrade_returns_partial_and_quarantines(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            full, _ = ds.query()
            corrupt_leaf(out, ds.metadata, 1)
            ds.file_cache.close()  # force a re-open of the damaged file
            part, stats = ds.query(on_error="degrade")
            assert stats.quarantined_files == 1
            assert 0 < len(part) < len(full)
            assert list(ds.quarantined()) == [1]
            # subsequent plans exclude the leaf up front and still report it
            plan = ds.plan()
            assert plan.excluded_files == 1
            again, stats2 = ds.query(on_error="degrade")
            assert stats2.quarantined_files == 1
            assert len(again) == len(part)

    def test_degrade_with_parallel_executor(self, written_dataset):
        out, rep = written_dataset
        corrupt_leaf(out, BATDataset(rep.metadata_path).metadata, 1)
        with BATDataset(rep.metadata_path, executor="thread:4") as ds:
            part, stats = ds.query(on_error="degrade")
            assert stats.quarantined_files == 1
            assert len(part) > 0

    def test_clear_quarantine_retries_the_leaf(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            full, _ = ds.query()
            victim = out / ds.metadata.leaves[1].file_name
            pristine = victim.read_bytes()
            corrupt_leaf(out, ds.metadata, 1)
            ds.file_cache.close()
            ds.query(on_error="degrade")
            assert ds.quarantined()
            victim.write_bytes(pristine)  # "repair" the file
            ds.clear_quarantine()
            healed, stats = ds.query()
            assert stats.quarantined_files == 0
            assert len(healed) == len(full)

    def test_user_errors_are_never_degraded(self, written_dataset):
        _, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            with pytest.raises(ValueError):
                ds.query(quality=2.0, on_error="degrade")
            with pytest.raises(KeyError):
                ds.plan(filters=[AttributeFilter("nope", 0, 1)])
            with pytest.raises(ValueError, match="on_error"):
                ds.query(on_error="ignore")

    def test_open_error_counter(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            corrupt_leaf(out, ds.metadata, 0)
            ds.query(on_error="degrade")
            assert ds.file_cache.stats()["open_errors"] >= 0  # treelet flip opens fine
            (out / ds.metadata.leaves[2].file_name).unlink()
            # an already-cached mmap would still serve the unlinked file;
            # drop handles so the next query has to re-open it
            ds.file_cache.close()
            ds.query(on_error="degrade")
            assert ds.file_cache.stats()["open_errors"] == 1


class TestServeIntegrity:
    def test_partial_response_and_counters(self, written_dataset):
        out, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            full, _ = ds.query()
            n_full = len(full)
            corrupt_leaf(out, ds.metadata, 1)
        with QueryService(rep.metadata_path) as svc:
            sid = svc.open_session()
            resp = svc.request(sid, quality=1.0)
            assert resp.partial
            assert resp.quarantined_files == 1
            assert 0 < len(resp) < n_full
            # a partial result must not be served from the result cache
            sid2 = svc.open_session()
            resp2 = svc.request(sid2, quality=1.0)
            assert not resp2.cache_hit
            assert resp2.partial

            snap = svc.snapshot()
            assert snap["integrity"]["quarantined_leaves"] == 1
            assert snap["integrity"]["partial_responses"] == 2
            assert snap["requests"]["partial"] == 2
            assert snap["requests"]["quarantined_files"] == 2

    def test_clean_service_reports_zero(self, written_dataset):
        _, rep = written_dataset
        with QueryService(rep.metadata_path) as svc:
            sid = svc.open_session()
            resp = svc.request(sid, quality=0.5)
            assert not resp.partial and resp.quarantined_files == 0
            snap = svc.snapshot()
            assert snap["integrity"]["quarantined_leaves"] == 0
            assert snap["integrity"]["partial_responses"] == 0


class TestScrubCLI:
    def test_dataset_clean(self, written_dataset, capsys):
        _, rep = written_dataset
        assert main(["scrub", rep.metadata_path]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_dataset_corrupt_exit_code(self, written_dataset, capsys):
        out_dir, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            corrupt_leaf(out_dir, ds.metadata, 1)
        assert main(["scrub", rep.metadata_path]) == 1
        out = capsys.readouterr().out
        assert "treelet" in out

    def test_single_file_and_json(self, checksummed, capsys):
        assert main(["scrub", str(checksummed), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "ok"

    def test_missing_leaf_reported(self, written_dataset, capsys):
        out_dir, rep = written_dataset
        with BATDataset(rep.metadata_path) as ds:
            (out_dir / ds.metadata.leaves[0].file_name).unlink()
        assert main(["scrub", rep.metadata_path]) == 1
        assert "missing" in capsys.readouterr().out
