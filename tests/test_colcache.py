"""Tests for the byte-budgeted decoded-column cache tier.

Covers the unit contract (LRU under a hard byte budget, counter-pure
``peek``, per-path invalidation) and the integration invariants: a cached
read must be byte-identical to a cold decode, cache hits must not inflate
the ``decoded_bytes`` work counter, and entries must die with their file
handle — eviction, drop, and quarantine all invalidate, so a rewritten or
corrupt file can never serve stale columns.
"""

import numpy as np
import pytest

from repro.bat import BATBuildConfig, build_bat
from repro.bat.colcache import DecodedColumnCache
from repro.bat.filecache import BATFileCache
from repro.bat.query import query_file


def _arr(nbytes: int) -> np.ndarray:
    return np.zeros(nbytes, dtype=np.uint8)


class TestUnitContract:
    def test_get_put_round_trip_and_counters(self):
        c = DecodedColumnCache(budget_bytes=1024)
        assert c.get("f", 0, 1) is None
        a = _arr(100)
        c.put("f", 0, 1, a)
        assert c.get("f", 0, 1) is a
        assert c.stats()["hits"] == 1
        assert c.stats()["misses"] == 1
        assert c.nbytes == 100

    def test_lru_eviction_under_tight_budget(self):
        c = DecodedColumnCache(budget_bytes=250)
        c.put("f", 0, 0, _arr(100))
        c.put("f", 1, 0, _arr(100))
        # touching treelet 0 makes treelet 1 the LRU victim
        assert c.get("f", 0, 0) is not None
        c.put("f", 2, 0, _arr(100))
        assert c.peek("f", 1, 0) is None
        assert c.peek("f", 0, 0) is not None
        assert c.peek("f", 2, 0) is not None
        assert c.stats()["evictions"] == 1
        assert c.nbytes <= 250

    def test_oversized_entry_rejected(self):
        c = DecodedColumnCache(budget_bytes=50)
        c.put("f", 0, 0, _arr(40))
        c.put("f", 1, 0, _arr(51))
        assert c.peek("f", 1, 0) is None
        # the oversized entry must not have evicted the resident one
        assert c.peek("f", 0, 0) is not None
        assert c.stats()["evictions"] == 0

    def test_peek_is_counter_and_order_pure(self):
        c = DecodedColumnCache(budget_bytes=250)
        c.put("f", 0, 0, _arr(100))
        c.put("f", 1, 0, _arr(100))
        before = c.stats()
        assert c.peek("f", 0, 0) is not None
        assert c.peek("f", 9, 9) is None
        assert c.stats() == before
        # peek did not refresh treelet 0, so it is still the LRU victim
        c.put("f", 2, 0, _arr(100))
        assert c.peek("f", 0, 0) is None
        assert c.peek("f", 1, 0) is not None

    def test_invalidate_is_per_path(self):
        c = DecodedColumnCache(budget_bytes=1024)
        c.put("a", 0, 0, _arr(10))
        c.put("a", 1, 2, _arr(10))
        c.put("b", 0, 0, _arr(10))
        assert c.invalidate("a") == 2
        assert len(c) == 1
        assert c.nbytes == 10
        assert c.peek("b", 0, 0) is not None

    def test_zero_budget_caches_nothing(self):
        c = DecodedColumnCache(budget_bytes=0)
        c.put("f", 0, 0, _arr(1))
        assert len(c) == 0

    def test_replacing_a_key_adjusts_bytes(self):
        c = DecodedColumnCache(budget_bytes=1024)
        c.put("f", 0, 0, _arr(100))
        c.put("f", 0, 0, _arr(30))
        assert c.nbytes == 30
        assert len(c) == 1


@pytest.fixture(scope="module")
def v4_bytes():
    rng = np.random.default_rng(11)
    n = 6000
    pos = rng.random((n, 3)).astype(np.float32)
    batch = None
    from repro.types import ParticleBatch

    batch = ParticleBatch(
        pos,
        {
            "id": np.arange(n, dtype=np.int64),
            "temp": (300 + 5 * rng.standard_normal(n)).astype(np.float64),
        },
    )
    return build_bat(batch, BATBuildConfig(codecs="auto")).data


def _digest(batch) -> tuple:
    parts = [batch.positions.tobytes() if batch.positions is not None else b""]
    parts += [batch.attributes[k].tobytes() for k in sorted(batch.attributes)]
    return tuple(parts)


class TestIntegration:
    def test_cached_read_byte_identical_to_cold(self, v4_bytes, tmp_path):
        path = tmp_path / "a.bat"
        path.write_bytes(v4_bytes)
        with BATFileCache(capacity=4) as cache:
            f = cache.get(path)
            cold, _ = query_file(f, quality=1.0)
            decoded_after_cold = f.decoded_bytes
            assert cache.column_cache.stats()["entries"] > 0
            warm, _ = query_file(f, quality=1.0)
            assert _digest(warm) == _digest(cold)
            # the warm pass was served from the column cache: no new decode
            assert f.decoded_bytes == decoded_after_cold
            assert cache.column_cache.stats()["hits"] > 0

    def test_hits_do_not_count_as_decode_work(self, v4_bytes, tmp_path):
        path = tmp_path / "a.bat"
        path.write_bytes(v4_bytes)
        with BATFileCache(capacity=4) as cache:
            f = cache.get(path)
            query_file(f, quality=1.0)
            stats = cache.stats()
            query_file(f, quality=1.0)
            assert cache.stats()["decoded_bytes"] == stats["decoded_bytes"]

    def test_tight_budget_still_byte_identical(self, v4_bytes, tmp_path):
        path = tmp_path / "a.bat"
        path.write_bytes(v4_bytes)
        # big enough to admit single columns, far too small to hold them all
        with BATFileCache(capacity=4, column_cache_bytes=20_000) as cache:
            f = cache.get(path)
            cold, _ = query_file(f, quality=1.0)
            warm, _ = query_file(f, quality=1.0)
            assert _digest(warm) == _digest(cold)
            assert cache.column_cache.stats()["evictions"] > 0

    def test_disabled_tier_falls_back_to_handle_memoization(self, v4_bytes, tmp_path):
        path = tmp_path / "a.bat"
        path.write_bytes(v4_bytes)
        with BATFileCache(capacity=4, column_cache_bytes=0) as cache:
            f = cache.get(path)
            assert cache.column_cache is None
            query_file(f, quality=1.0)
            first = f.decoded_bytes
            assert first > 0
            # without the tier, treelet views memoize for the handle's life
            query_file(f, quality=1.0)
            assert f.decoded_bytes == first
            assert "decoded_columns" not in cache.stats()

    def test_eviction_invalidates_columns(self, v4_bytes, tmp_path):
        a, b = tmp_path / "a.bat", tmp_path / "b.bat"
        a.write_bytes(v4_bytes)
        b.write_bytes(v4_bytes)
        with BATFileCache(capacity=1) as cache:
            query_file(cache.get(a), quality=1.0)
            assert cache.column_cache.stats()["entries"] > 0
            # opening b evicts a's handle, which must take its columns along
            handle_b = cache.get(b)
            query_file(handle_b, quality=1.0)
            assert cache.evictions == 1
            remaining = {k[0] for k in cache.column_cache._entries}
            assert remaining == {handle_b.cache_key}

    def test_drop_invalidates_columns(self, v4_bytes, tmp_path):
        path = tmp_path / "a.bat"
        path.write_bytes(v4_bytes)
        with BATFileCache(capacity=4) as cache:
            query_file(cache.get(path), quality=1.0)
            cache.drop(path)
            assert cache.column_cache.stats()["entries"] == 0

    def test_quarantine_invalidates_columns(self, tmp_path):
        from repro.core import TwoPhaseWriter
        from repro.core.dataset import BATDataset
        from repro.machines import testing_machine
        from tests.test_pipeline import make_rank_data

        data = make_rank_data(nranks=4, seed=3)
        writer = TwoPhaseWriter(
            testing_machine(), target_size=64 * 1024,
            bat_config=BATBuildConfig(codecs="auto"),
        )
        report = writer.write(data, out_dir=tmp_path, name="q")
        with BATDataset(report.metadata_path) as ds:
            ds.query()
            colcache = ds.file_cache.column_cache
            assert colcache.stats()["entries"] > 0
            victim = ds.file_cache.peek(
                ds.directory / ds.metadata.leaves[0].file_name
            ).cache_key
            assert any(k[0] == victim for k in colcache._entries)
            ds.quarantine_leaf(0, "test")
            assert not any(k[0] == victim for k in colcache._entries)
