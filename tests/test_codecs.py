"""Tests for the pluggable per-column codec layer (BAT v4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bat import AttributeFilter, BATBuildConfig, BATFile, build_bat
from repro.bat.codecs import (
    available_codecs,
    decode_column,
    encode_column,
    get_codec,
    select_codecs,
)
from repro.bat.format import CODEC_VERSION, LEGACY_VERSION, VERSION
from repro.bat.query import query_file
from repro.errors import CodecError, ReproError
from repro.types import ParticleBatch


# -- registry ---------------------------------------------------------------


def test_registry_contains_core_codecs():
    names = available_codecs()
    for name in ("raw", "zlib", "delta"):
        assert name in names


def test_quantize_self_registers():
    c = get_codec("quantize10")
    assert not c.lossless
    assert "quantize10" in available_codecs()


def test_unknown_codec_raises_codec_error():
    with pytest.raises(CodecError):
        get_codec("nope")
    # CodecError is part of the unified hierarchy
    assert issubclass(CodecError, ReproError)
    assert issubclass(CodecError, ValueError)


# -- round trips ------------------------------------------------------------

_INT_DTYPES = [np.int32, np.int64, np.uint32, np.uint64, np.int16, np.uint8]
_FLOAT_DTYPES = [np.float32, np.float64]


@pytest.mark.parametrize("dtype", _INT_DTYPES)
def test_delta_round_trip_extremes(dtype):
    info = np.iinfo(dtype)
    arr = np.array([info.min, info.min, 0, 1, info.max, info.max - 1], dtype=dtype)
    buf, p0, p1 = encode_column("delta", arr)
    out = decode_column("delta", buf, dtype, len(arr), p0, p1)
    np.testing.assert_array_equal(out, arr)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        dtype=st.sampled_from([np.int64, np.uint64, np.int32, np.float32, np.float64]),
        shape=st.integers(min_value=1, max_value=300),
    ),
    st.sampled_from(["raw", "zlib", "delta"]),
)
def test_lossless_codecs_round_trip_exactly(arr, name):
    codec = get_codec(name)
    if not codec.can_encode(arr.dtype):
        return
    buf, p0, p1 = codec.encode(arr)
    out = codec.decode(buf, arr.dtype, arr.size, p0, p1)
    assert out.tobytes() == np.ascontiguousarray(arr).ravel().tobytes()


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        dtype=st.sampled_from(_FLOAT_DTYPES),
        shape=st.integers(min_value=1, max_value=200),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=32
        ),
    ),
    st.sampled_from(["quantize8", "quantize12", "quantize16"]),
)
def test_quantize_round_trip_within_recorded_bound(arr, name):
    codec = get_codec(name)
    buf, p0, p1 = codec.encode(arr)
    out = codec.decode(buf, arr.dtype, arr.size, p0, p1)
    bound = codec.error_bound(p0, p1, arr.dtype)
    err = np.max(np.abs(out.astype(np.float64) - arr.astype(np.float64)))
    assert err <= bound


def test_every_registered_codec_round_trips_a_plain_column():
    """Contract check across the whole registry, including future codecs."""
    rng = np.random.default_rng(0)
    for name in available_codecs():
        codec = get_codec(name)
        if codec.can_encode(np.dtype(np.float64)):
            arr = np.round(rng.random(512) * 100, 2)
        elif codec.can_encode(np.dtype(np.int64)):
            arr = rng.integers(0, 1000, 512).astype(np.int64)
        else:
            continue
        buf, p0, p1 = codec.encode(arr)
        out = codec.decode(buf, arr.dtype, arr.size, p0, p1)
        if codec.lossless:
            assert out.tobytes() == arr.tobytes(), name
        else:
            bound = codec.error_bound(p0, p1, arr.dtype)
            assert np.max(np.abs(out - arr)) <= bound, name


# -- selection --------------------------------------------------------------


def test_select_codecs_auto_leaves_noise_raw():
    rng = np.random.default_rng(1)
    cols = {
        "seq": np.arange(100_000, dtype=np.int64),
        "noise": rng.random(100_000),
    }
    chosen = select_codecs(cols, "auto")
    assert chosen["seq"] == "delta"
    assert chosen["noise"] == "raw"


def test_select_codecs_is_deterministic():
    rng = np.random.default_rng(2)
    cols = {"a": rng.integers(0, 50, 64_000).astype(np.int64)}
    assert select_codecs(cols, "auto") == select_codecs(cols, "auto")


def test_select_codecs_rejects_unknown_column():
    with pytest.raises(CodecError):
        select_codecs({"a": np.arange(4)}, {"b": "zlib"})


def test_select_codecs_explicit_mapping_with_default():
    cols = {"a": np.arange(64, dtype=np.int64), "b": np.arange(64, dtype=np.int64)}
    chosen = select_codecs(cols, {"*": "raw", "a": "zlib"})
    assert chosen == {"a": "zlib", "b": "raw"}


# -- file-level behavior ----------------------------------------------------


def _batch(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3)).astype(np.float32)
    return ParticleBatch(
        pos,
        {
            "id": np.arange(n, dtype=np.int64),
            "rho": rng.random(n),
        },
    )


def test_v4_build_queries_byte_identical_to_v3(tmp_path):
    batch = _batch()
    v3 = build_bat(batch, BATBuildConfig())
    v4 = build_bat(batch, BATBuildConfig(codecs="auto"))
    p3, p4 = tmp_path / "a3.bat", tmp_path / "a4.bat"
    p3.write_bytes(v3.data)
    p4.write_bytes(v4.data)
    with BATFile(p3) as f3, BATFile(p4) as f4:
        assert f3.header.version == VERSION
        assert f4.header.version == CODEC_VERSION
        for kwargs in (
            dict(quality=1.0),
            dict(quality=0.4),
            dict(quality=1.0, filters=(AttributeFilter("rho", 0.2, 0.6),)),
        ):
            b3, _ = query_file(f3, **kwargs)
            b4, _ = query_file(f4, **kwargs)
            assert b3.positions.tobytes() == b4.positions.tobytes()
            for name in b3.attributes:
                assert b3.attributes[name].tobytes() == b4.attributes[name].tobytes()


def test_v2_files_still_readable(tmp_path):
    batch = _batch(seed=3)
    v2 = build_bat(batch, BATBuildConfig(checksums=False))
    p = tmp_path / "legacy.bat"
    p.write_bytes(v2.data)
    with BATFile(p) as f:
        assert f.header.version == LEGACY_VERSION
        b, _ = query_file(f, quality=1.0)
        assert len(b) == len(batch)


def test_lazy_decode_skips_unselected_columns(tmp_path):
    batch = _batch(seed=4)
    built = build_bat(batch, BATBuildConfig(codecs="auto"))
    p = tmp_path / "lazy.bat"
    p.write_bytes(built.data)
    with BATFile(p) as f:
        full_raw = sum(c["raw_nbytes"] for c in f.column_summary().values())
        query_file(f, quality=1.0, attributes=["id"])
        assert 0 < f.decoded_bytes < full_raw
        decoded_after_one = f.decoded_bytes
        query_file(f, quality=1.0)
        assert f.decoded_bytes > decoded_after_one


def test_codec_table_and_sizes_in_summary(tmp_path):
    batch = _batch(seed=5)
    built = build_bat(batch, BATBuildConfig(codecs="auto"))
    assert built.codec_table["id"] == "delta"
    assert built.payload_encoded_bytes < built.payload_raw_bytes
    p = tmp_path / "sum.bat"
    p.write_bytes(built.data)
    with BATFile(p) as f:
        summary = f.column_summary()
        assert summary["id"]["codec"] == "delta"
        assert summary["id"]["enc_nbytes"] < summary["id"]["raw_nbytes"]
        assert summary["rho"]["error_bound"] == 0.0


def test_lossy_bound_recorded_and_honored(tmp_path):
    batch = _batch(seed=6)
    built = build_bat(batch, BATBuildConfig(codecs={"*": "raw", "rho": "quantize12"}))
    p = tmp_path / "lossy.bat"
    p.write_bytes(built.data)
    with BATFile(p) as f:
        bound = f.column_summary()["rho"]["error_bound"]
        assert bound > 0
        got, _ = query_file(f, quality=1.0)
    # file order differs from input order; sorting both sides preserves the
    # per-element error bound (sorting is 1-Lipschitz in the max norm)
    ref = batch.attributes["rho"]
    assert np.max(np.abs(np.sort(got.attributes["rho"]) - np.sort(ref))) <= bound


def test_codecs_require_checksums():
    with pytest.raises(ValueError):
        BATBuildConfig(codecs="auto", checksums=False)


def test_corrupt_v4_treelet_detected(tmp_path):
    from repro.bat.integrity import scrub_file

    batch = _batch(seed=7)
    built = build_bat(batch, BATBuildConfig(codecs="auto"))
    p = tmp_path / "corrupt.bat"
    p.write_bytes(built.data)
    with BATFile(p) as f:
        off = int(f.shallow_leaves["treelet_offset"][0])
    # flip a byte inside the first treelet (column directory or payload):
    # the v4 directory sits under the same per-treelet CRC as the payload
    raw = bytearray(built.data)
    raw[off + 20] ^= 0xFF
    p.write_bytes(bytes(raw))
    report = scrub_file(p)
    assert not report.ok
    assert any("treelet" in s for s in report.bad_sections)
