"""Tests for BAT building, serialization, and the mmap reader."""

import numpy as np
import pytest

from repro.bat import BATBuildConfig, BATFile, build_bat
from repro.bat.format import PAGE_SIZE, Header
from repro.types import ParticleBatch


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(11)
    n = 50_000
    pos = rng.random((n, 3)).astype(np.float32) * np.array([4.0, 2.0, 1.0], dtype=np.float32)
    return ParticleBatch(
        pos,
        {
            "mass": rng.random(n),
            "temp": rng.normal(300.0, 40.0, n),
            "id": rng.integers(0, 1000, n).astype(np.float64),
        },
    )


@pytest.fixture(scope="module")
def bat_path(batch, tmp_path_factory):
    built = build_bat(batch)
    path = tmp_path_factory.mktemp("bat") / "test.bat"
    built.write(path)
    return path


class TestBuildBAT:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_bat(ParticleBatch.empty())

    def test_summary_fields(self, batch):
        built = build_bat(batch)
        assert built.n_points == len(batch)
        assert built.raw_bytes == batch.nbytes
        assert built.nbytes == built.raw_bytes + built.overhead_bytes
        assert set(built.attr_ranges) == {"mass", "temp", "id"}
        lo, hi = built.attr_ranges["mass"]
        assert lo == pytest.approx(batch.attributes["mass"].min())
        assert hi == pytest.approx(batch.attributes["mass"].max())

    def test_root_bitmap_full_for_uniform_attr(self, batch):
        built = build_bat(batch)
        # mass spans its own range uniformly -> root bitmap saturates
        assert built.root_bitmaps["mass"] == 0xFFFFFFFF

    def test_overhead_small(self, batch):
        built = build_bat(batch)
        assert built.overhead_fraction < 0.10

    def test_no_attributes(self):
        rng = np.random.default_rng(0)
        b = ParticleBatch(rng.random((1000, 3)))
        built = build_bat(b)
        assert built.attr_ranges == {}
        assert built.root_bitmaps == {}

    def test_single_point(self):
        built = build_bat(ParticleBatch(np.array([[1.0, 2.0, 3.0]]), {"a": np.array([5.0])}))
        assert built.n_points == 1

    def test_clustered_points(self):
        """Degenerate clustering (all Morton codes equal) must still build."""
        pos = np.full((500, 3), 0.25, dtype=np.float32)
        built = build_bat(ParticleBatch(pos, {"v": np.arange(500, dtype=np.float64)}))
        assert built.n_treelets == 1

    def test_explicit_subprefix(self, batch):
        built = build_bat(batch, BATBuildConfig(subprefix_bits=6))
        assert built.n_treelets <= 64

    def test_adaptive_subprefix_scales(self):
        rng = np.random.default_rng(1)
        small = build_bat(ParticleBatch(rng.random((500, 3))))
        big = build_bat(ParticleBatch(rng.random((300_000, 3))))
        assert big.n_treelets > small.n_treelets


class TestHeaderRoundtrip:
    def test_pack_unpack(self):
        h = Header(
            n_points=123, n_attrs=2, morton_bits=21, subprefix_bits=12,
            lod_per_node=8, max_leaf_points=128, n_shallow_inner=7,
            n_shallow_leaves=8, dict_entries=42, max_treelet_depth=5,
            bounds=np.array([[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]]),
            attr_table_offset=256, shallow_inner_offset=384,
            shallow_leaf_offset=500, dict_offset=900, treelets_offset=4096,
            file_size=100_000,
        )
        h2 = Header.unpack(h.pack())
        assert h2.n_points == 123
        assert h2.dict_entries == 42
        np.testing.assert_array_equal(h2.bounds, h.bounds)
        assert h2.file_size == 100_000

    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            Header.unpack(b"JUNK" + b"\0" * 252)

    def test_truncated(self):
        with pytest.raises(ValueError, match="truncated"):
            Header.unpack(b"BATF")


class TestBATFile:
    def test_open_and_metadata(self, bat_path, batch):
        with BATFile(bat_path) as bat:
            assert bat.n_points == len(batch)
            assert bat.attr_names == ["mass", "temp", "id"]
            assert bat.attr_dtypes["mass"] == np.float64
            lo, hi = bat.attr_ranges["temp"]
            assert lo == pytest.approx(batch.attributes["temp"].min())
            assert bat.bounds.contains_points(batch.positions).all()

    def test_treelets_page_aligned(self, bat_path):
        with BATFile(bat_path) as bat:
            offs = bat.shallow_leaves["treelet_offset"]
            assert (offs % PAGE_SIZE == 0).all()

    def test_treelet_views(self, bat_path, batch):
        with BATFile(bat_path) as bat:
            total = 0
            for k in range(bat.n_treelets):
                tv = bat.treelet(k)
                assert tv.positions.shape[1] == 3
                assert set(tv.attributes) == {"mass", "temp", "id"}
                assert len(tv.attributes["mass"]) == tv.n_points
                total += tv.n_points
            assert total == len(batch)

    def test_treelet_cached(self, bat_path):
        with BATFile(bat_path) as bat:
            assert bat.treelet(0) is bat.treelet(0)

    def test_leaf_points_inside_leaf_box(self, bat_path):
        with BATFile(bat_path) as bat:
            for k in range(min(bat.n_treelets, 8)):
                tv = bat.treelet(k)
                box = bat.leaf_box(k)
                lo = np.asarray(box.lower, dtype=np.float32) - 1e-5
                hi = np.asarray(box.upper, dtype=np.float32) + 1e-5
                assert ((tv.positions >= lo) & (tv.positions <= hi)).all()

    def test_children_decode(self, bat_path):
        with BATFile(bat_path) as bat:
            root, is_leaf = bat.root()
            if is_leaf:
                pytest.skip("single-treelet file")
            seen_leaves = set()
            stack = [(root, False)]
            inner_count = 0
            while stack:
                idx, leaf = stack.pop()
                if leaf:
                    seen_leaves.add(idx)
                else:
                    inner_count += 1
                    stack.extend(bat.children(idx))
            assert seen_leaves == set(range(bat.n_treelets))
            assert inner_count == bat.header.n_shallow_inner

    def test_dictionary_resolves(self, bat_path):
        with BATFile(bat_path) as bat:
            for k in range(min(bat.n_treelets, 4)):
                ids = bat.shallow_leaves[k]["bitmap_ids"]
                for i in ids:
                    bm = bat.bitmap(int(i))
                    assert 0 <= bm <= 0xFFFFFFFF

    def test_size_mismatch_detected(self, bat_path, tmp_path):
        data = bat_path.read_bytes()
        bad = tmp_path / "bad.bat"
        bad.write_bytes(data + b"extra")
        with pytest.raises(ValueError, match="mismatch"):
            BATFile(bad)

    def test_attr_index_unknown(self, bat_path):
        with BATFile(bat_path) as bat:
            with pytest.raises(KeyError):
                bat.attr_index("nope")

    def test_roundtrip_content(self, bat_path, batch):
        """Every particle and attribute value survives the roundtrip."""
        with BATFile(bat_path) as bat:
            parts = [bat.treelet(k) for k in range(bat.n_treelets)]
            pos = np.concatenate([t.positions for t in parts])
            mass = np.concatenate([t.attributes["mass"] for t in parts])
        order_a = np.lexsort(pos.T)
        order_b = np.lexsort(batch.positions.T)
        np.testing.assert_allclose(pos[order_a], batch.positions[order_b])
        np.testing.assert_allclose(
            np.sort(mass), np.sort(batch.attributes["mass"])
        )
