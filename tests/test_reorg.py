"""Stale-cache invalidation under file replacement + online reorganization.

Covers the two halves of the bugfix PR:

- the **staleness layer**: a leaf file replaced on disk (the atomic
  rename every publisher here uses) must never be served from a stale
  mmap, a stale decoded column, a stale plan, a stale result, or a stale
  collapse join — while streams that pinned the old handle finish on the
  exact bytes they planned against;
- the **reorganizer** (:mod:`repro.reorg`): telemetry-driven rewrites
  must preserve the particle multiset exactly, publish under a bumped
  manifest generation, leave the old generation readable, and make hot
  queries open fewer files.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import QueryRequest, reassemble_stream
from repro.bat.builder import BATBuildConfig, build_bat
from repro.bat.file import BATFile
from repro.bat.query import query_file
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.core.metadata import DatasetMetadata
from repro.core.planner import PlanCache
from repro.machines import testing_machine
from repro.reorg import (
    ReorgAction,
    ReorgConfig,
    ReorgDaemon,
    ReorgError,
    apply_reorg,
    plan_reorg,
    reorganize,
)
from repro.serve import (
    DegradationConfig,
    QueryService,
    ServeConfig,
    ShardedQueryService,
)
from repro.serve.metrics import AccessTelemetry, merge_telemetry
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def write_dataset(out, nranks=9, seed=21, codecs=None, target=128 * 1024):
    bat_config = BATBuildConfig(codecs=codecs) if codecs else None
    report = TwoPhaseWriter(
        testing_machine(), target_size=target, bat_config=bat_config
    ).write(make_rank_data(nranks=nranks, seed=seed), out_dir=out, name="reorg")
    return Path(report.metadata_path)


def canon(batch):
    """Order-independent multiset key of a batch."""
    cols = [batch.positions[:, i] for i in range(3)]
    cols += [batch.attributes[k] for k in sorted(batch.attributes)]
    order = np.lexsort(cols)
    return tuple(np.ascontiguousarray(c[order]).tobytes() for c in cols)


def exact(batch):
    """Order-sensitive byte identity of a batch."""
    out = [None if batch.positions is None else batch.positions.tobytes()]
    for k, v in batch.attributes.items():
        out.append((k, str(v.dtype), v.tobytes()))
    return out


def replace_leaf(directory, leaf, bump=1.0):
    """Atomically replace one leaf file with a rebuilt, value-shifted copy.

    Positions are unchanged (bounds/planning stay valid); every attribute
    is shifted by ``bump`` so stale reads are detectable by value.
    """
    path = directory / leaf.file_name
    with BATFile(path) as f:
        batch, _ = query_file(f, quality=1.0)
    shifted = ParticleBatch(
        batch.positions,
        {k: v + np.asarray(bump, dtype=v.dtype) for k, v in batch.attributes.items()},
    )
    built = build_bat(shifted, BATBuildConfig())
    tmp = path.with_suffix(".replacement")
    built.write(tmp)
    os.replace(tmp, path)  # what every atomic publisher here does
    return shifted


def hot_box(metadata, frac_lo=0.30, frac_hi=0.60):
    lo = np.array(metadata.bounds.lower)
    ext = np.array(metadata.bounds.upper) - lo
    return Box(tuple(lo + frac_lo * ext), tuple(lo + frac_hi * ext))


def synth_telemetry(metadata, box, queries=20, columns=None):
    """A telemetry snapshot as if ``box`` had been queried ``queries`` times."""
    leaves = {}
    for i, leaf in enumerate(metadata.leaves):
        hot = leaf.bounds.intersects(box)
        leaves[str(i)] = {
            "opens": queries if hot else 0,
            "points": 100 * queries if hot else 0,
            "decoded_bytes": 1000 * queries if hot else 0,
        }
    cols = dict.fromkeys(columns or ("positions",), queries)
    return {
        "queries": queries,
        "steps": {
            "0": {
                "leaves": leaves,
                "boxes": [[list(box.lower), list(box.upper), queries]],
                "columns": cols,
            }
        },
    }


# ---------------------------------------------------------------------------
# satellite: BATFileCache staleness under os.replace


class TestStaleFileCache:
    def test_replaced_leaf_served_fresh(self, tmp_path):
        """Regression: pre-fix, the cached mmap served the old bytes."""
        meta = write_dataset(tmp_path)
        with BATDataset(meta) as ds:
            before = ds.query(QueryRequest(quality=1.0))
            attr = sorted(before.batch.attributes)[0]
            shifted = replace_leaf(ds.directory, ds.metadata.leaves[0])
            assert ds.file_cache.stale_reopens == 0
            after = ds.query(QueryRequest(quality=1.0))
            assert ds.file_cache.stale_reopens == 1
            # the replaced leaf's rows must show the shifted values
            assert canon(after.batch) != canon(before.batch)
            assert len(after.batch) == len(before.batch)
            assert np.isin(
                shifted.attributes[attr], after.batch.attributes[attr]
            ).all()

    def test_decoded_columns_not_reused_across_replacement(self, tmp_path):
        """v4 decoded-column cache entries are keyed by inode, not path."""
        meta = write_dataset(tmp_path, codecs="auto")
        with BATDataset(meta) as ds:
            before = ds.query(QueryRequest(quality=1.0))
            attr = sorted(before.batch.attributes)[0]
            shifted = replace_leaf(ds.directory, ds.metadata.leaves[0])
            after = ds.query(QueryRequest(quality=1.0))
            assert np.isin(
                shifted.attributes[attr],
                after.batch.attributes[attr],
            ).all()

    def test_peek_discards_stale_handle(self, tmp_path):
        meta = write_dataset(tmp_path)
        with BATDataset(meta) as ds:
            ds.query(QueryRequest(quality=1.0))
            path = ds.directory / ds.metadata.leaves[0].file_name
            assert ds.file_cache.peek(path) is not None
            replace_leaf(ds.directory, ds.metadata.leaves[0])
            assert ds.file_cache.peek(path) is None

    def test_stat_signature_captured_from_open_fd(self, tmp_path):
        meta = write_dataset(tmp_path)
        md = DatasetMetadata.load(meta)
        with BATFile(meta.parent / md.leaves[0].file_name) as f:
            st = os.stat(meta.parent / md.leaves[0].file_name)
            assert f.stat_signature == (st.st_mtime_ns, st.st_size, st.st_ino)
            assert str(st.st_ino) in f.cache_key


# ---------------------------------------------------------------------------
# satellite: lease keeps a replaced leaf's old handle alive for streams


class TestLeaseDuringReplace:
    def test_stream_finishes_on_old_bytes_new_queries_see_new(self, tmp_path):
        meta = write_dataset(tmp_path)
        with BATDataset(meta) as ds:
            req = QueryRequest(quality=1.0)
            reference = ds.query(req)
            attr = sorted(reference.batch.attributes)[0]

            stream = ds.stream(req)
            increments = [next(stream)]  # handles now open and leased
            shifted = replace_leaf(ds.directory, ds.metadata.leaves[0])
            increments += list(stream)

            # the stream completes on the handle it pinned: byte-identical
            # to the pre-replacement direct query
            reassembled = reassemble_stream(increments)
            assert exact(reassembled.batch) == exact(reference.batch)

            # a fresh query observes the replacement
            fresh = ds.query(req)
            assert np.isin(
                shifted.attributes[attr], fresh.batch.attributes[attr]
            ).all()
            # and the deferred old handle was closed at lease release
            assert not ds.file_cache._deferred


# ---------------------------------------------------------------------------
# satellite: PlanCache keys on the manifest layout generation


class TestPlanCacheGeneration:
    def test_generation_in_key(self, tmp_path):
        meta = write_dataset(tmp_path)
        md = DatasetMetadata.load(meta)
        cache = PlanCache()
        box = hot_box(md)
        p0 = cache.get_or_build(md, box, ())
        assert cache.get_or_build(md, box, ()) is p0
        assert cache.hits == 1
        md.generation += 1  # what a reorg republish does
        p1 = cache.get_or_build(md, box, ())
        assert p1 is not p0
        assert cache.misses == 2

    def test_metadata_generation_round_trip(self, tmp_path):
        meta = write_dataset(tmp_path)
        md = DatasetMetadata.load(meta)
        assert md.generation == 0
        md.generation = 7
        md.save(meta)
        assert DatasetMetadata.load(meta).generation == 7
        # manifests written before the field existed load as generation 0
        doc = json.loads(meta.read_text())
        del doc["generation"]
        meta.write_text(json.dumps(doc))
        assert DatasetMetadata.load(meta).generation == 0


# ---------------------------------------------------------------------------
# access telemetry


class TestAccessTelemetry:
    def test_snapshot_shape_and_json_clean(self):
        t = AccessTelemetry()
        bound = t.bind(0)
        bound.view(Box((0, 0, 0), (1, 1, 1)), (), ["positions", "temp"])
        bound.leaf(3, points=10, decoded_bytes=100)
        bound.view(None, (), None)
        doc = t.snapshot()
        json.dumps(doc, allow_nan=False)  # strict JSON
        step = doc["steps"]["0"]
        assert step["leaves"]["3"] == {
            "opens": 1, "points": 10, "decoded_bytes": 100,
        }
        assert step["columns"]["temp"] == 1
        assert any(entry[0] is None for entry in step["boxes"])

    def test_box_census_is_bounded(self):
        t = AccessTelemetry()
        bound = t.bind(0)
        for i in range(AccessTelemetry.BOX_CENSUS_CAP * 2):
            bound.view(Box((0, 0, float(i)), (1, 1, float(i + 1))), (), None)
        doc = t.snapshot()
        assert len(doc["steps"]["0"]["boxes"]) <= 64  # snapshot reports top-N
        json.dumps(doc, allow_nan=False)

    def test_merge_telemetry_sums(self):
        a, b = AccessTelemetry(), AccessTelemetry()
        box = Box((0, 0, 0), (1, 1, 1))
        a.bind(0).view(box, (), ["positions"])
        a.bind(0).leaf(1, points=5, decoded_bytes=50)
        b.bind(0).view(box, (), ["positions"])
        b.bind(0).leaf(1, points=7, decoded_bytes=70)
        merged = merge_telemetry([a.snapshot(), b.snapshot()])
        step = merged["steps"]["0"]
        assert step["leaves"]["1"] == {
            "opens": 2, "points": 12, "decoded_bytes": 120,
        }
        assert step["columns"]["positions"] == 2
        assert [e[2] for e in step["boxes"]] == [2]

    def test_dataset_records_per_leaf_decode_work(self, tmp_path):
        meta = write_dataset(tmp_path, codecs="auto")
        t = AccessTelemetry()
        with BATDataset(meta) as ds:
            ds.telemetry = t.bind(0)
            res = ds.query(QueryRequest(quality=1.0))
        doc = t.snapshot()
        leaves = doc["steps"]["0"]["leaves"]
        assert sum(x["points"] for x in leaves.values()) == len(res.batch)
        assert t.files_opened(0) == res.stats.files_opened


# ---------------------------------------------------------------------------
# planning


class TestPlanReorg:
    def test_below_evidence_floor_plans_nothing(self, tmp_path):
        meta = write_dataset(tmp_path)
        md = DatasetMetadata.load(meta)
        tele = synth_telemetry(md, hot_box(md), queries=3)
        assert plan_reorg(md, tele, config=ReorgConfig(min_queries=8)) == []
        assert plan_reorg(md, {}, config=ReorgConfig()) == []

    def test_carve_claims_only_partially_cut_leaves(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        tele = synth_telemetry(md, box)
        actions = plan_reorg(
            md, tele, config=ReorgConfig(min_queries=8, carve_min_points=1)
        )
        carves = [a for a in actions if a.kind == "carve"]
        assert carves, "a hot box cutting leaves must produce a carve"
        for a in carves:
            assert a.hot_box == box
            for i in a.leaf_indices:
                leaf = md.leaves[i]
                assert leaf.bounds.intersects(box)
                assert not box.contains_box(leaf.bounds)

    def test_each_leaf_claimed_at_most_once(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        tele = synth_telemetry(md, hot_box(md))
        actions = plan_reorg(
            md, tele, config=ReorgConfig(min_queries=8, carve_min_points=1)
        )
        seen = [i for a in actions for i in a.leaf_indices]
        assert len(seen) == len(set(seen))

    def test_merge_groups_cold_leaves(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        tele = synth_telemetry(md, hot_box(md))
        actions = plan_reorg(md, tele, config=ReorgConfig(min_queries=8))
        merges = [a for a in actions if a.kind == "merge"]
        assert merges
        for a in merges:
            assert len(a.leaf_indices) >= 2
            total = sum(md.leaves[i].count for i in a.leaf_indices)
            assert total <= ReorgConfig().merge_max_points


# ---------------------------------------------------------------------------
# applying


class TestApplyReorg:
    def test_multiset_preserved_generation_bumped_old_files_kept(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        with BATDataset(meta) as ds:
            before = ds.query(QueryRequest(quality=1.0, engine="recursive"))
        old_files = [leaf.file_name for leaf in md.leaves]
        tele = synth_telemetry(md, hot_box(md))

        report = reorganize(meta, tele, config=ReorgConfig(min_queries=8))
        assert report.changed
        assert report.generation_from == 0
        assert report.generation_to == 1
        assert report.verified_points > 0

        md2 = DatasetMetadata.load(meta)
        assert md2.generation == 1
        assert md2.tree_nodes == []  # reorganized manifests go flat
        assert [leaf.leaf_index for leaf in md2.leaves] == list(
            range(len(md2.leaves))
        )
        # old generation's files remain readable for in-flight readers
        for name in old_files:
            assert (meta.parent / name).exists()
        with BATDataset(meta) as ds:
            after = ds.query(QueryRequest(quality=1.0, engine="recursive"))
        assert canon(after.batch) == canon(before.batch)

    def test_remove_old_unlinks_replaced_files(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        tele = synth_telemetry(md, hot_box(md))
        report = reorganize(
            meta, tele, config=ReorgConfig(min_queries=8, remove_old=True)
        )
        assert report.files_removed
        for name in report.files_removed:
            assert not (meta.parent / name).exists()
        with BATDataset(meta) as ds:
            ds.query(QueryRequest(quality=1.0))  # still fully readable

    def test_no_actions_is_a_no_op(self, tmp_path):
        meta = write_dataset(tmp_path)
        before = meta.read_text()
        report = apply_reorg(meta, [], config=ReorgConfig())
        assert not report.changed
        assert report.generation_from == report.generation_to == 0
        assert meta.read_text() == before

    def test_double_claimed_leaf_rejected(self, tmp_path):
        meta = write_dataset(tmp_path)
        actions = [
            ReorgAction(kind="merge", leaf_indices=(0, 1)),
            ReorgAction(kind="recodec", leaf_indices=(1,)),
        ]
        with pytest.raises(ReorgError, match="claimed"):
            apply_reorg(meta, actions, config=ReorgConfig())

    def test_unknown_leaf_rejected(self, tmp_path):
        meta = write_dataset(tmp_path)
        with pytest.raises(ReorgError, match="unknown leaf"):
            apply_reorg(
                meta,
                [ReorgAction(kind="recodec", leaf_indices=(999,))],
                config=ReorgConfig(),
            )

    def test_hot_query_opens_fewer_files(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3, codecs="auto")
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        with BATDataset(meta) as ds:
            before = ds.query(QueryRequest(box=box, quality=1.0))
        tele = synth_telemetry(md, box, columns=("positions",))
        reorganize(
            meta, tele,
            config=ReorgConfig(min_queries=8, carve_min_points=1),
        )
        with BATDataset(meta) as ds:
            after = ds.query(QueryRequest(box=box, quality=1.0))
        assert canon(after.batch) == canon(before.batch)
        assert after.stats.files_opened < before.stats.files_opened

    @SETTINGS
    @given(
        seed=st.integers(0, 5),
        frac=st.tuples(
            st.floats(0.1, 0.5), st.floats(0.55, 0.9),
        ),
        quality=st.sampled_from([0.3, 0.7, 1.0]),
    )
    def test_queries_byte_identical_across_generations(
        self, tmp_path_factory, seed, frac, quality
    ):
        """Property: whichever generation a reader observes, its result
        equals a direct recursive-engine query against that generation."""
        out = tmp_path_factory.mktemp("reorg-prop")
        meta = write_dataset(out, nranks=9, seed=seed)
        md = DatasetMetadata.load(meta)
        box = hot_box(md, *frac)
        req = QueryRequest(box=box, quality=quality)
        ref = QueryRequest(box=box, quality=quality, engine="recursive")
        with BATDataset(meta) as ds:
            g0 = ds.query(req)
            g0_ref = ds.query(ref)
        assert exact(g0.batch) == exact(g0_ref.batch)
        reorganize(
            meta, synth_telemetry(md, box),
            config=ReorgConfig(min_queries=8, carve_min_points=1),
        )
        with BATDataset(meta) as ds:
            g1 = ds.query(req)
            g1_ref = ds.query(ref)
        # within the new generation: frontier == recursive, byte for byte
        assert exact(g1.batch) == exact(g1_ref.batch)
        # across generations the full-quality multiset is invariant;
        # partial-quality samples legitimately follow the layout
        if quality == 1.0:
            assert canon(g1.batch) == canon(g0.batch)


# ---------------------------------------------------------------------------
# service reload


def serve_config(**kw):
    kw.setdefault("capacity", 2)
    kw.setdefault("degradation", DegradationConfig(enabled=False))
    return ServeConfig(**kw)


class TestServiceReload:
    def test_reload_serves_new_generation_coherently(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        req = QueryRequest(box=box, quality=1.0)
        with QueryService(meta, serve_config()) as svc:
            r0 = svc.execute(req)
            assert svc.generation(0) == 0

            reorganize(meta, synth_telemetry(md, box),
                       config=ReorgConfig(min_queries=8, carve_min_points=1))
            # not reloaded yet: still the old generation, caches intact
            r_cached = svc.execute(req)
            assert r_cached.cache_hit
            assert exact(r_cached.batch) == exact(r0.batch)

            assert svc.maybe_reload(0) is True
            assert svc.generation(0) == 1
            assert svc.maybe_reload(0) is False  # idempotent

            # the new generation's result key misses the old entry and the
            # response is byte-identical to a direct query against it
            r1 = svc.execute(req)
            assert not r1.cache_hit
            with BATDataset(meta) as ds:
                direct = ds.query(req)
            assert exact(r1.batch) == exact(direct.batch)
            assert canon(r1.batch) == canon(r0.batch)
            assert svc.snapshot()["generations"]["0"] == 1

    def test_snapshot_exports_telemetry(self, tmp_path):
        meta = write_dataset(tmp_path)
        with QueryService(meta, serve_config()) as svc:
            svc.execute(QueryRequest(quality=0.5))
            doc = svc.snapshot()
        tele = doc["telemetry"]
        json.dumps(tele, allow_nan=False)
        assert tele["queries"] >= 1
        assert "0" in tele["steps"]

    def test_daemon_run_once_reorganizes_and_reloads(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        req = QueryRequest(box=box, quality=1.0)
        with QueryService(meta, serve_config()) as svc:
            baseline = svc.execute(req)
            # distinct qualities defeat the result cache so every query
            # reaches the dataset and records box-census evidence
            for i in range(12):
                svc.execute(QueryRequest(box=box, quality=0.5 + i * 0.04))
            daemon = ReorgDaemon(
                svc,
                config=ReorgConfig(min_queries=8, min_box_queries=4,
                                   carve_min_points=1),
            )
            reports = daemon.run_once()
            assert [r.changed for r in reports] == [True]
            assert svc.generation(0) == 1
            fresh = svc.execute(req)
            assert canon(fresh.batch) == canon(baseline.batch)

    def test_daemon_below_evidence_is_a_no_op(self, tmp_path):
        meta = write_dataset(tmp_path)
        with QueryService(meta, serve_config()) as svc:
            daemon = ReorgDaemon(svc, config=ReorgConfig(min_queries=8))
            reports = daemon.run_once()
            assert [r.changed for r in reports] == [False]
            assert svc.generation(0) == 0


# ---------------------------------------------------------------------------
# satellite: sharded invalidation — reload RPC fan-out + crash respawn


class TestShardedReload:
    def test_reload_broadcast_reaches_every_worker(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        req = QueryRequest(box=box, quality=1.0)
        with ShardedQueryService(meta, serve_config(), n_shards=2) as svc:
            r0 = svc.execute(req)
            reorganize(meta, synth_telemetry(md, box),
                       config=ReorgConfig(min_queries=8, carve_min_points=1))
            assert svc.generation(0) == 0  # nothing reloaded yet
            assert svc.reload_step(0) == 1
            assert svc.generation(0) == 1
            # every live worker reopened the new manifest
            for client in svc._shards:
                worker = client.call("snapshot")
                assert worker["generations"].get("0", 1) == 1
            r1 = svc.execute(req)
            with BATDataset(meta) as ds:
                direct = ds.query(req)
            assert exact(r1.batch) == exact(direct.batch)
            assert canon(r1.batch) == canon(r0.batch)

    def test_respawned_worker_reads_new_manifest(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        req = QueryRequest(box=box, quality=1.0)
        with ShardedQueryService(meta, serve_config(), n_shards=2) as svc:
            r0 = svc.execute(req)
            reorganize(meta, synth_telemetry(md, box),
                       config=ReorgConfig(min_queries=8, carve_min_points=1))
            svc.reload_step(0)
            # a worker that dies after the republish respawns straight
            # onto the new manifest — no broadcast needed for it
            svc._shards[0].process.kill()
            svc._shards[0].process.join(5.0)
            r1 = svc.execute(req)
            with BATDataset(meta) as ds:
                direct = ds.query(req)
            assert exact(r1.batch) == exact(direct.batch)
            assert canon(r1.batch) == canon(r0.batch)

    def test_router_merges_worker_telemetry(self, tmp_path):
        meta = write_dataset(tmp_path, nranks=16, seed=3)
        md = DatasetMetadata.load(meta)
        box = hot_box(md)
        with ShardedQueryService(meta, serve_config(), n_shards=2) as svc:
            for i in range(6):
                svc.execute(QueryRequest(box=box, quality=0.5 + i * 0.05))
            doc = svc.telemetry_snapshot()
            json.dumps(doc, allow_nan=False)
            assert doc["queries"] >= 6
            leaves = doc["steps"]["0"]["leaves"]
            assert sum(t["opens"] for t in leaves.values()) > 0
            # the merged document drives the planner exactly like a
            # single-process snapshot does
            actions = plan_reorg(
                md, doc,
                config=ReorgConfig(min_queries=4, min_box_queries=4,
                                   carve_min_points=1),
            )
            assert actions
