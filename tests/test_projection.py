"""Deep column projection: reads that skip the position block entirely.

``QueryRequest.columns`` may name the pseudo-column ``"positions"``; an
explicit selection that omits it returns a positions-free batch
(``positions=None``, count-based length) and — on v4 files — never runs
the position payload through its codec unless a box test needs it. These
tests pin the semantics (values identical to a full read, attribute
order preserved), the legacy-shim behavior, and the decode accounting
that makes one-column reads actually cheap.
"""

import numpy as np
import pytest

from repro.api import QueryRequest
from repro.bat import BATBuildConfig, BATFile, build_bat
from repro.bat.query import query_file
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def v4_dataset(tmp_path_factory):
    data = make_rank_data(nranks=8, seed=5)
    out = tmp_path_factory.mktemp("proj")
    writer = TwoPhaseWriter(
        testing_machine(), target_size=96 * 1024,
        bat_config=BATBuildConfig(codecs="auto"),
    )
    report = writer.write(data, out_dir=out, name="proj")
    with BATDataset(report.metadata_path) as ds:
        yield ds


class TestDatasetProjection:
    def test_one_column_batch_is_positions_free(self, v4_dataset):
        full, _ = v4_dataset.query(QueryRequest())
        one, _ = v4_dataset.query(QueryRequest(columns=("temp",)))
        assert one.positions is None
        assert set(one.attributes) == {"temp"}
        assert len(one) == len(full)
        np.testing.assert_array_equal(one.attributes["temp"], full.attributes["temp"])

    def test_positions_pseudo_column_opts_back_in(self, v4_dataset):
        full, _ = v4_dataset.query(QueryRequest())
        both, _ = v4_dataset.query(QueryRequest(columns=("temp", "positions")))
        assert both.positions is not None
        np.testing.assert_array_equal(both.positions, full.positions)
        np.testing.assert_array_equal(both.attributes["temp"], full.attributes["temp"])
        assert set(both.attributes) == {"temp"}

    def test_positions_only_projection(self, v4_dataset):
        full, _ = v4_dataset.query(QueryRequest())
        pos_only, _ = v4_dataset.query(QueryRequest(columns=("positions",)))
        assert pos_only.attributes == {}
        np.testing.assert_array_equal(pos_only.positions, full.positions)

    def test_legacy_attributes_kwarg_still_returns_positions(self, v4_dataset):
        from repro.api import _reset_deprecation_warnings

        _reset_deprecation_warnings()  # another test may have burned the form
        with pytest.warns(DeprecationWarning):
            batch, _ = v4_dataset.query(attributes=["temp"])
        assert batch.positions is not None
        assert set(batch.attributes) == {"temp"}

    def test_box_query_under_projection_still_filters(self, v4_dataset):
        box = Box((0.25, 0.25, 0.0), (1.5, 2.0, 1.0))
        boxed, _ = v4_dataset.query(QueryRequest(box=box))
        projected, _ = v4_dataset.query(QueryRequest(box=box, columns=("temp",)))
        assert projected.positions is None
        assert len(projected) == len(boxed)
        np.testing.assert_array_equal(
            projected.attributes["temp"], boxed.attributes["temp"]
        )

    def test_filter_column_outside_projection_still_applies(self, v4_dataset):
        from repro.bat import AttributeFilter

        filt = AttributeFilter("mass", 0.3, 0.8)
        ref, _ = v4_dataset.query(QueryRequest(filters=(filt,)))
        got, _ = v4_dataset.query(QueryRequest(filters=(filt,), columns=("temp",)))
        assert got.positions is None
        assert "mass" not in got.attributes
        np.testing.assert_array_equal(got.attributes["temp"], ref.attributes["temp"])

    def test_one_column_read_decodes_exactly_its_column(self, v4_dataset):
        ds = v4_dataset
        ds.file_cache.close()  # cold handles and cold column cache
        before = ds.file_cache.stats()["decoded_bytes"]
        batch, _ = ds.query(QueryRequest(columns=("temp",)))
        one_col = ds.file_cache.stats()["decoded_bytes"] - before
        ds.file_cache.close()
        before = ds.file_cache.stats()["decoded_bytes"]
        full_batch, _ = ds.query(QueryRequest())
        full = ds.file_cache.stats()["decoded_bytes"] - before
        # no box, no filters: neither nodes nor positions decode, so the
        # read materialized exactly the temp column's raw bytes and nothing
        # else — the whole point of deep projection
        assert one_col == full_batch.attributes["temp"].nbytes
        assert one_col < full

    def test_empty_projected_result(self, v4_dataset):
        got, _ = v4_dataset.query(
            QueryRequest(box=Box((50.0, 50.0, 50.0), (60.0, 60.0, 60.0)),
                         columns=("temp",))
        )
        assert len(got) == 0
        assert got.positions is None
        assert got.attributes["temp"].size == 0


class TestQueryFileProjection:
    @pytest.fixture(scope="class")
    def v4_file(self, tmp_path_factory):
        rng = np.random.default_rng(2)
        n = 4000
        batch = ParticleBatch(
            rng.random((n, 3)).astype(np.float32),
            {
                "id": np.arange(n, dtype=np.int64),
                "temp": (300 + 5 * rng.standard_normal(n)),
            },
        )
        path = tmp_path_factory.mktemp("projf") / "p.bat"
        path.write_bytes(build_bat(batch, BATBuildConfig(codecs="auto")).data)
        with BATFile(path) as f:
            yield f

    def test_with_positions_false(self, v4_file):
        full, _ = query_file(v4_file, quality=1.0)
        bare, _ = query_file(
            v4_file, quality=1.0, attributes=["temp"], with_positions=False
        )
        assert bare.positions is None
        assert len(bare) == len(full)
        np.testing.assert_array_equal(bare.attributes["temp"], full.attributes["temp"])

    def test_callbacks_receive_none_positions(self, v4_file):
        seen = []

        def cb(positions, attrs):
            seen.append((positions, {k: v.copy() for k, v in attrs.items()}))

        _, stats = query_file(
            v4_file, quality=1.0, attributes=["temp"], with_positions=False,
            callback=cb,
        )
        assert seen
        assert all(p is None for p, _ in seen)
        total = sum(len(a["temp"]) for _, a in seen)
        assert total == stats.points_returned

    def test_box_still_applies_without_positions(self, v4_file):
        box = Box((0.0, 0.0, 0.0), (0.5, 0.5, 0.5))
        ref, _ = query_file(v4_file, quality=1.0, box=box)
        got, _ = query_file(
            v4_file, quality=1.0, box=box, attributes=["temp"], with_positions=False
        )
        assert got.positions is None
        assert len(got) == len(ref)
        np.testing.assert_array_equal(got.attributes["temp"], ref.attributes["temp"])


class TestPositionsFreeBatch:
    def test_requires_count(self):
        with pytest.raises(Exception):
            ParticleBatch(None, {"a": np.arange(3.0)})
        b = ParticleBatch(None, {"a": np.arange(3.0)}, count=3)
        assert len(b) == 3

    def test_empty_and_bounds(self):
        from repro.types import AttributeSpec

        b = ParticleBatch.empty(
            [AttributeSpec("a", np.float64)], with_positions=False
        )
        assert b.positions is None and len(b) == 0
        assert b.bounds.is_empty

    def test_select_and_concatenate(self):
        a = ParticleBatch(None, {"x": np.arange(5.0)}, count=5)
        sel = a.select(np.array([0, 2, 4]))
        assert len(sel) == 3
        np.testing.assert_array_equal(sel.attributes["x"], [0.0, 2.0, 4.0])
        both = ParticleBatch.concatenate([a, a])
        assert len(both) == 10 and both.positions is None

    def test_concatenate_rejects_mixed(self):
        a = ParticleBatch(None, {"x": np.arange(2.0)}, count=2)
        b = ParticleBatch(np.zeros((2, 3), dtype=np.float32), {"x": np.arange(2.0)})
        with pytest.raises(Exception):
            ParticleBatch.concatenate([a, b])
