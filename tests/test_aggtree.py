"""Tests for the adaptive Aggregation Tree (the paper's core contribution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggtree import (
    AggInner,
    AggTreeConfig,
    build_aggregation_tree,
    split_cost,
)
from repro.types import Box


def grid_ranks(nx, ny, nz=1, counts=None):
    """Regular rank grid with given per-rank counts."""
    bounds = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                bounds.append([[i, j, k], [i + 1, j + 1, k + 1]])
    bounds = np.array(bounds, dtype=np.float64)
    n = len(bounds)
    if counts is None:
        counts = np.full(n, 1000, dtype=np.int64)
    return bounds, np.asarray(counts, dtype=np.int64)


class TestSplitCost:
    def test_balanced_is_zero(self):
        assert split_cost(100, 100) == 0.0

    def test_fully_imbalanced_is_half(self):
        assert split_cost(100, 0) == 0.5

    def test_empty_is_worst(self):
        assert split_cost(0, 0) == 0.5

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_bounded_and_symmetric(self, a, b):
        c = split_cost(a, b)
        assert 0.0 <= c <= 0.5
        assert c == pytest.approx(split_cost(b, a))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AggTreeConfig(target_size=0)
        with pytest.raises(ValueError):
            AggTreeConfig(overfull_factor=0.5)
        with pytest.raises(ValueError):
            AggTreeConfig(overfull_cost_ratio=0.5)


class TestBuild:
    def test_empty_input(self):
        tree = build_aggregation_tree(np.zeros((4, 2, 3)), np.zeros(4), 100.0)
        assert tree.n_leaves == 0
        assert tree.nodes == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatch"):
            build_aggregation_tree(np.zeros((3, 2, 3)), np.zeros(4), 100.0)

    def test_single_rank(self):
        bounds = np.array([[[0, 0, 0], [1, 1, 1]]], dtype=np.float64)
        tree = build_aggregation_tree(bounds, np.array([500]), 100.0)
        assert tree.n_leaves == 1
        assert tree.leaves[0].count == 500

    def test_everything_fits_one_leaf(self):
        bounds, counts = grid_ranks(4, 4)
        tree = build_aggregation_tree(bounds, counts, 10.0, AggTreeConfig(target_size=10**9))
        assert tree.n_leaves == 1
        assert tree.leaves[0].count == counts.sum()

    def test_uniform_grid_balanced_leaves(self):
        bounds, counts = grid_ranks(8, 8)
        tree = build_aggregation_tree(
            bounds, counts, 100.0, AggTreeConfig(target_size=400_000)
        )
        # 6.4 MB total / 0.4 MB target -> 16 leaves of 4 ranks each
        assert tree.n_leaves == 16
        leaf_counts = [l.count for l in tree.leaves]
        assert max(leaf_counts) == min(leaf_counts) == 4000
        assert tree.imbalance() == pytest.approx(1.0)

    def test_leaves_partition_active_ranks(self):
        bounds, counts = grid_ranks(6, 5)
        counts[::7] = 0  # some empty ranks
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=100_000))
        seen = np.concatenate([l.rank_ids for l in tree.leaves])
        active = np.nonzero(counts > 0)[0]
        assert sorted(seen.tolist()) == sorted(active.tolist())
        assert len(seen) == len(set(seen.tolist()))

    def test_empty_ranks_excluded(self):
        bounds, counts = grid_ranks(4, 4)
        counts[:] = 0
        counts[5] = 100
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=1000))
        assert tree.n_leaves == 1
        assert list(tree.leaves[0].rank_ids) == [5]

    def test_rank_never_split(self):
        """A single huge rank exceeds the target but stays in one leaf."""
        bounds, counts = grid_ranks(4, 1)
        counts[2] = 10**6
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=10_000))
        leaf_of = tree.leaf_of_rank()
        assert leaf_of[2] >= 0
        heavy = tree.leaves[leaf_of[2]]
        assert list(heavy.rank_ids) == [2]
        assert heavy.nbytes > 10_000  # exceeds target, allowed

    def test_nonuniform_isolates_dense_region(self):
        bounds, counts = grid_ranks(8, 8)
        counts[:] = 10
        counts[0] = 50_000  # dense corner
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=200_000))
        leaf_of = tree.leaf_of_rank()
        dense_leaf = tree.leaves[leaf_of[0]]
        # the dense rank is not grouped with many sparse ranks
        assert len(dense_leaf.rank_ids) <= 8
        assert tree.imbalance() < 8.0

    def test_split_positions_on_rank_boundaries(self):
        bounds, counts = grid_ranks(8, 8)
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=400_000))
        edges = set()
        for r in range(len(bounds)):
            for ax in range(3):
                edges.add((ax, bounds[r, 1, ax]))
        for node in tree.nodes:
            if isinstance(node, AggInner):
                assert (node.axis, node.position) in edges

    def test_leaf_bounds_cover_member_ranks(self):
        bounds, counts = grid_ranks(6, 6)
        counts = np.random.default_rng(0).integers(0, 5000, len(counts))
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=300_000))
        for leaf in tree.leaves:
            for r in leaf.rank_ids:
                assert leaf.bounds.contains_box(Box.from_array(bounds[r]))

    def test_query_box_matches_linear_scan(self):
        bounds, counts = grid_ranks(8, 8)
        counts = np.random.default_rng(1).integers(1, 5000, len(counts))
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=300_000))
        for qb in (Box((0, 0, 0), (3, 3, 1)), Box((5.5, 2.5, 0), (7, 4, 1)), Box((20, 20, 20), (21, 21, 21))):
            via_tree = tree.query_box(qb)
            linear = sorted(l.leaf_index for l in tree.leaves if l.bounds.intersects(qb))
            assert via_tree == linear

    def test_overfull_leaf_avoids_bad_split(self):
        # 3 ranks in a row: two tiny, one heavy; splitting the heavy off is
        # maximally imbalanced, so the overfull rule keeps them together
        # when within the factor.
        bounds = np.array(
            [[[0, 0, 0], [1, 1, 1]], [[1, 0, 0], [2, 1, 1]], [[2, 0, 0], [3, 1, 1]]],
            dtype=np.float64,
        )
        counts = np.array([50, 50, 1000])
        cfg = AggTreeConfig(target_size=80_000, overfull_cost_ratio=4.0, overfull_factor=1.5)
        tree = build_aggregation_tree(bounds, counts, 100.0, cfg)
        assert tree.n_leaves == 1
        assert tree.leaves[0].overfull

    def test_overfull_disabled_by_default(self):
        bounds = np.array(
            [[[0, 0, 0], [1, 1, 1]], [[1, 0, 0], [2, 1, 1]], [[2, 0, 0], [3, 1, 1]]],
            dtype=np.float64,
        )
        counts = np.array([50, 50, 1000])
        cfg = AggTreeConfig(target_size=80_000)
        tree = build_aggregation_tree(bounds, counts, 100.0, cfg)
        assert tree.n_leaves > 1

    def test_overfull_respects_size_factor(self):
        """Too large for the overfull factor -> must split despite the cost."""
        bounds = np.array(
            [[[0, 0, 0], [1, 1, 1]], [[1, 0, 0], [2, 1, 1]]], dtype=np.float64
        )
        counts = np.array([50, 10_000])
        cfg = AggTreeConfig(target_size=100_000, overfull_cost_ratio=4.0, overfull_factor=1.5)
        tree = build_aggregation_tree(bounds, counts, 100.0, cfg)
        assert tree.n_leaves == 2

    def test_split_all_axes_not_worse(self):
        bounds, counts = grid_ranks(8, 2)
        counts = np.random.default_rng(2).integers(1, 5000, len(counts))
        base = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=200_000))
        allax = build_aggregation_tree(
            bounds, counts, 100.0, AggTreeConfig(target_size=200_000, split_all_axes=True)
        )
        assert allax.imbalance() <= base.imbalance() * 1.25

    def test_identical_bounds_fallback(self):
        """Fully overlapping rank bounds still split (degenerate input)."""
        bounds = np.tile(np.array([[[0, 0, 0], [1, 1, 1]]], dtype=np.float64), (6, 1, 1))
        counts = np.full(6, 1000)
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=150_000))
        assert tree.n_leaves >= 4
        seen = sorted(np.concatenate([l.rank_ids for l in tree.leaves]).tolist())
        assert seen == list(range(6))

    def test_depth_first_leaf_order_is_spatially_coherent(self):
        bounds, counts = grid_ranks(8, 8)
        tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=400_000))
        centers = [leaf.bounds.center for leaf in tree.leaves]
        hops = [np.linalg.norm(b - a) for a, b in zip(centers, centers[1:])]
        # consecutive leaves are nearby on average (DFS order is spatial)
        assert np.mean(hops) < 5.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 10), st.integers(2, 10), st.integers(0, 2**31))
    def test_any_grid_valid_partition(self, nx, ny, seed):
        bounds, _ = grid_ranks(nx, ny)
        counts = np.random.default_rng(seed).integers(0, 10_000, nx * ny)
        tree = build_aggregation_tree(bounds, counts, 64.0, AggTreeConfig(target_size=10**6))
        seen = np.concatenate([l.rank_ids for l in tree.leaves]) if tree.leaves else []
        active = np.nonzero(counts > 0)[0]
        assert sorted(np.asarray(seen).tolist()) == sorted(active.tolist())
        assert sum(l.count for l in tree.leaves) == counts.sum()
