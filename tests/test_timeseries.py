"""Tests for the time-series catalog API."""

import numpy as np
import pytest

from repro.core.timeseries import TimeSeriesDataset, TimeSeriesWriter
from repro.machines import testing_machine as make_test_machine
from repro.types import Box
from repro.workloads import DamBreak


@pytest.fixture(scope="module")
def series_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("series")
    dam = DamBreak(total=400_000)
    writer = TimeSeriesWriter(make_test_machine(), out, target_size=256 * 1024)
    for ts in (0, 1001, 2001):
        data = dam.rank_data(ts, nranks=16, scale=0.05, materialize=True)
        writer.write_step(ts, data)
    return out, dam


class TestWriter:
    def test_catalog_written(self, series_dir):
        out, _ = series_dir
        assert (out / "series.json").exists()

    def test_steps_recorded(self, series_dir):
        out, _ = series_dir
        with TimeSeriesDataset(out) as ts:
            assert ts.steps == [0, 1001, 2001]
            assert len(ts) == 3

    def test_negative_step_rejected(self, tmp_path):
        w = TimeSeriesWriter(make_test_machine(), tmp_path)
        with pytest.raises(ValueError):
            w.write_step(-1, None)

    def test_counts_only_rejected(self, tmp_path):
        from repro.core import RankData

        w = TimeSeriesWriter(make_test_machine(), tmp_path)
        data = RankData(
            bounds=np.zeros((2, 2, 3)), counts=[1, 1], bytes_per_particle=10.0
        )
        with pytest.raises(ValueError, match="materialized"):
            w.write_step(0, data)

    def test_resume_appends_to_catalog(self, series_dir, tmp_path):
        import shutil

        out, dam = series_dir
        clone = tmp_path / "resumed"
        shutil.copytree(out, clone)
        writer = TimeSeriesWriter(make_test_machine(), clone, target_size=256 * 1024)
        assert writer.steps == [0, 1001, 2001]  # picked up the existing catalog
        data = dam.rank_data(3001, nranks=16, scale=0.05, materialize=True)
        writer.write_step(3001, data)
        with TimeSeriesDataset(clone) as ts:
            assert 3001 in ts.steps

    def test_rewrite_replaces_step(self, tmp_path):
        dam = DamBreak(total=100_000)
        w = TimeSeriesWriter(make_test_machine(), tmp_path, target_size=256 * 1024)
        w.write_step(5, dam.rank_data(0, nranks=8, scale=0.05, materialize=True))
        first = TimeSeriesDataset(tmp_path).record(5).n_particles
        w.write_step(5, dam.rank_data(0, nranks=8, scale=0.1, materialize=True))
        second = TimeSeriesDataset(tmp_path).record(5).n_particles
        assert second > first


class TestDataset:
    def test_open_step(self, series_dir):
        out, _ = series_dir
        with TimeSeriesDataset(out) as ts:
            ds = ts.step(1001)
            assert ds.total_particles == ts.record(1001).n_particles
            assert ts.step(1001) is ds  # cached

    def test_fixed_particle_counts(self, series_dir):
        out, _ = series_dir
        with TimeSeriesDataset(out) as ts:
            counts = list(ts.particle_counts().values())
            # the dam break has a fixed population; sampled counts stay close
            assert max(counts) - min(counts) < 0.02 * max(counts)

    def test_nearest_step(self, series_dir):
        out, _ = series_dir
        with TimeSeriesDataset(out) as ts:
            assert ts.nearest_step(0) == 0
            assert ts.nearest_step(900) == 1001
            assert ts.nearest_step(10_000) == 2001

    def test_nearest_step_empty(self, tmp_path):
        (tmp_path / "series.json").write_text(
            '{"format": "bat-series", "version": 1, "steps": []}'
        )
        ts = TimeSeriesDataset(tmp_path)
        with pytest.raises(ValueError):
            ts.nearest_step(3)

    def test_attr_range_over_time(self, series_dir):
        out, _ = series_dir
        with TimeSeriesDataset(out) as ts:
            ranges = ts.attr_range_over_time("pressure")
            assert set(ranges) == {0, 1001, 2001}
            with pytest.raises(KeyError):
                ts.attr_range_over_time("nope")

    def test_query_over_time_tracks_surge(self, series_dir):
        out, dam = series_dir
        # count particles past the dam over time: must grow as water spreads
        past_dam = Box((2.0, 0.0, 0.0), tuple(dam.domain.upper))
        with TimeSeriesDataset(out) as ts:
            counts = [len(b) for _, b, _ in ts.query_over_time(box=past_dam)]
        assert counts[0] == 0  # initial column is behind the dam
        assert counts[-1] > counts[1] >= counts[0]

    def test_bad_catalog(self, tmp_path):
        (tmp_path / "series.json").write_text('{"format": "nope"}')
        with pytest.raises(ValueError, match="not a BAT series"):
            TimeSeriesDataset(tmp_path)
