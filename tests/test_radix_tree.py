"""Tests for the Karras radix-tree / shallow-tree build."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.build import build_radix_tree, shallow_tree_leaves
from repro.morton import MAX_BITS


def leaf_ranges(tree):
    """Recover, for each inner node, the leaf range it covers."""
    ranges = {}

    def visit(node):
        lo = hi = None
        for child, is_leaf in (
            (int(tree.left[node]), tree.left_is_leaf[node]),
            (int(tree.right[node]), tree.right_is_leaf[node]),
        ):
            clo, chi = (child, child) if is_leaf else visit(child)
            lo = clo if lo is None else min(lo, clo)
            hi = chi if hi is None else max(hi, chi)
        ranges[node] = (lo, hi)
        return lo, hi

    if tree.root >= 0:
        visit(tree.root)
    return ranges


class TestBuildRadixTree:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_radix_tree(np.array([], dtype=np.uint64), 12)

    def test_single_code(self):
        t = build_radix_tree(np.array([5], dtype=np.uint64), 12)
        assert t.n_leaves == 1
        assert t.n_inner == 0
        assert t.root == -1

    def test_two_codes(self):
        t = build_radix_tree(np.array([1, 2], dtype=np.uint64), 12)
        assert t.n_inner == 1
        assert t.left_is_leaf[0] and t.right_is_leaf[0]
        assert t.left[0] == 0 and t.right[0] == 1

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            build_radix_tree(np.array([2, 1], dtype=np.uint64), 12)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            build_radix_tree(np.array([1, 1], dtype=np.uint64), 12)

    def test_covers_all_leaves_exactly_once(self):
        rng = np.random.default_rng(0)
        codes = np.unique(rng.integers(0, 2**12, 200).astype(np.uint64))
        t = build_radix_tree(codes, 12)
        ranges = leaf_ranges(t)
        assert ranges[t.root] == (0, t.n_leaves - 1)
        # children of each inner node tile its range without overlap
        for node, (lo, hi) in ranges.items():
            lchild, lleaf = int(t.left[node]), t.left_is_leaf[node]
            rchild, rleaf = int(t.right[node]), t.right_is_leaf[node]
            llo, lhi = (lchild, lchild) if lleaf else ranges[lchild]
            rlo, rhi = (rchild, rchild) if rleaf else ranges[rchild]
            assert (llo, rhi) == (lo, hi)
            assert lhi + 1 == rlo

    def test_hierarchy_respects_prefixes(self):
        """Left subtree codes < right subtree codes at every inner node."""
        codes = np.array([0b000001, 0b000100, 0b100000, 0b100011, 0b111111], dtype=np.uint64)
        t = build_radix_tree(codes, 6)
        ranges = leaf_ranges(t)
        # root must split between the 0b0… and 0b1… groups
        root_left = int(t.left[t.root])
        lhi = root_left if t.left_is_leaf[t.root] else ranges[root_left][1]
        assert lhi == 1

    @settings(max_examples=50)
    @given(st.sets(st.integers(0, 2**15 - 1), min_size=1, max_size=100))
    def test_structure_valid_for_any_code_set(self, codeset):
        codes = np.array(sorted(codeset), dtype=np.uint64)
        t = build_radix_tree(codes, 15)
        if t.n_leaves == 1:
            assert t.n_inner == 0
            return
        assert t.n_inner == t.n_leaves - 1
        ranges = leaf_ranges(t)
        assert len(ranges) == t.n_inner
        assert ranges[t.root] == (0, t.n_leaves - 1)

    def test_parents_consistent(self):
        codes = np.unique(np.random.default_rng(3).integers(0, 4096, 50)).astype(np.uint64)
        t = build_radix_tree(codes, 12)
        ip, lp = t.parents()
        assert (lp >= 0).all()  # every leaf has a parent (n>1)
        assert (ip == -1).sum() == 1  # exactly one root


class TestShallowTreeLeaves:
    def test_merging_groups_particles(self):
        # full codes differing only below the subprefix collapse together
        bits = MAX_BITS
        shift = 3 * bits - 6
        full = np.array(
            [(1 << shift) + 5, (1 << shift) + 9, (2 << shift) + 1], dtype=np.uint64
        )
        uniq, starts = shallow_tree_leaves(full, subprefix_bits=6)
        np.testing.assert_array_equal(uniq, [1, 2])
        np.testing.assert_array_equal(starts, [0, 2, 3])

    def test_slices_cover_input(self):
        rng = np.random.default_rng(1)
        codes = np.sort(rng.integers(0, 2**63 - 1, 500).astype(np.uint64))
        uniq, starts = shallow_tree_leaves(codes, 12)
        assert starts[0] == 0 and starts[-1] == 500
        assert (np.diff(starts) > 0).all()
        assert len(uniq) == len(starts) - 1

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            shallow_tree_leaves(np.array([1], dtype=np.uint64), 2)
        with pytest.raises(ValueError):
            shallow_tree_leaves(np.array([1], dtype=np.uint64), 3 * MAX_BITS + 3)
