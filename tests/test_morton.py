"""Tests for vectorized Morton encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.morton import (
    MAX_BITS,
    decode_grid,
    encode_grid,
    encode_positions,
    morton_cell_box,
)
from repro.types import Box

coords21 = st.lists(st.integers(0, 2**21 - 1), min_size=1, max_size=100)


def reference_encode(x: int, y: int, z: int, bits: int) -> int:
    """Bit-by-bit interleave, the slow obviously-correct way."""
    code = 0
    for i in range(bits):
        code |= ((x >> i) & 1) << (3 * i)
        code |= ((y >> i) & 1) << (3 * i + 1)
        code |= ((z >> i) & 1) << (3 * i + 2)
    return code


class TestEncodeGrid:
    def test_origin(self):
        assert encode_grid([0], [0], [0])[0] == 0

    def test_axes_bit_positions(self):
        assert encode_grid([1], [0], [0])[0] == 1
        assert encode_grid([0], [1], [0])[0] == 2
        assert encode_grid([0], [0], [1])[0] == 4

    def test_against_reference(self):
        rng = np.random.default_rng(1)
        xs = rng.integers(0, 2**21, 200)
        ys = rng.integers(0, 2**21, 200)
        zs = rng.integers(0, 2**21, 200)
        codes = encode_grid(xs, ys, zs)
        for x, y, z, c in zip(xs, ys, zs, codes):
            assert int(c) == reference_encode(int(x), int(y), int(z), MAX_BITS)

    def test_bits_range_check(self):
        with pytest.raises(ValueError):
            encode_grid([0], [0], [0], bits=22)
        with pytest.raises(ValueError):
            encode_grid([0], [0], [0], bits=0)

    @given(coords21, coords21, coords21)
    def test_roundtrip(self, xs, ys, zs):
        n = min(len(xs), len(ys), len(zs))
        xs, ys, zs = xs[:n], ys[:n], zs[:n]
        codes = encode_grid(xs, ys, zs)
        dx, dy, dz = decode_grid(codes)
        np.testing.assert_array_equal(dx, xs)
        np.testing.assert_array_equal(dy, ys)
        np.testing.assert_array_equal(dz, zs)


class TestEncodePositions:
    def test_empty(self):
        box = Box((0, 0, 0), (1, 1, 1))
        assert len(encode_positions(np.empty((0, 3)), box)) == 0

    def test_empty_bounds_raises(self):
        with pytest.raises(ValueError):
            encode_positions(np.zeros((1, 3)), Box.empty())

    def test_corners(self):
        box = Box((0, 0, 0), (1, 1, 1))
        codes = encode_positions(np.array([[0, 0, 0], [1, 1, 1]]), box)
        assert codes[0] == 0
        # upper corner clamps into the last cell => all-ones code
        assert codes[1] == (1 << (3 * MAX_BITS)) - 1

    def test_monotone_along_axis(self):
        box = Box((0, 0, 0), (1, 1, 1))
        xs = np.linspace(0, 1, 100)
        pts = np.column_stack([xs, np.zeros(100), np.zeros(100)])
        codes = encode_positions(pts, box)
        assert (np.diff(codes.astype(np.int64)) >= 0).all()

    def test_degenerate_axis(self):
        box = Box((0, 0, 0), (1, 0, 1))  # zero extent in y
        pts = np.array([[0.5, 0.0, 0.5]])
        codes = encode_positions(pts, box)
        _, iy, _ = decode_grid(codes)
        assert iy[0] == 0

    def test_spatial_locality(self):
        """Sorting by Morton code must group nearby points."""
        rng = np.random.default_rng(2)
        # two well-separated clusters
        a = rng.normal([0.1, 0.1, 0.1], 0.01, (50, 3))
        b = rng.normal([0.9, 0.9, 0.9], 0.01, (50, 3))
        pts = np.vstack([a, b])
        box = Box((0, 0, 0), (1, 1, 1))
        order = np.argsort(encode_positions(pts, box))
        labels = (order >= 50).astype(int)
        # after sorting, each cluster occupies a contiguous run
        assert (np.diff(labels) != 0).sum() == 1


class TestMortonCellBox:
    def test_full_prefix_zero_levels(self):
        box = Box((0, 0, 0), (2, 4, 8))
        cell = morton_cell_box(0, 0, box)
        assert cell == box

    def test_one_level_octants(self):
        box = Box((0, 0, 0), (1, 1, 1))
        # prefix 0b000 = lower octant, 0b111 = upper octant
        lower = morton_cell_box(0, 3, box)
        upper = morton_cell_box(7, 3, box)
        assert lower.lower == (0, 0, 0)
        assert lower.upper == (0.5, 0.5, 0.5)
        assert upper.lower == (0.5, 0.5, 0.5)
        assert upper.upper == (1, 1, 1)

    def test_prefix_bits_multiple_of_3(self):
        with pytest.raises(ValueError):
            morton_cell_box(0, 4, Box((0, 0, 0), (1, 1, 1)))

    @given(st.integers(0, 7), st.integers(1, 4))
    def test_cells_within_bounds(self, child, levels):
        box = Box((-1, 0, 2), (3, 5, 9))
        prefix = child << (3 * (levels - 1))
        cell = morton_cell_box(prefix, 3 * levels, box)
        assert box.contains_box(cell)

    def test_points_fall_in_their_cell(self):
        rng = np.random.default_rng(3)
        box = Box((0, 0, 0), (10, 10, 10))
        pts = rng.random((200, 3)) * 10
        from repro.morton import encode_positions as enc

        codes = enc(pts, box)
        prefix_bits = 12
        prefixes = codes >> np.uint64(3 * MAX_BITS - prefix_bits)
        for p in np.unique(prefixes):
            cell = morton_cell_box(int(p), prefix_bits, box)
            inside = pts[prefixes == p]
            # tolerance for float quantization at cell edges
            lo = np.asarray(cell.lower) - 1e-9
            hi = np.asarray(cell.upper) + 1e-9
            assert ((inside >= lo) & (inside <= hi)).all()
