"""Tests for the time-stepped mini-app simulations (SWE dam break,
particle injection) — the substrates whose I/O the paper's library serves."""

import numpy as np
import pytest

from repro.types import Box
from repro.workloads import InjectionSim, ShallowWaterSim


class TestShallowWaterSim:
    @pytest.fixture(scope="class")
    def sim(self):
        s = ShallowWaterSim(n_particles=4000)
        s.step(100)
        return s

    def test_validation(self):
        with pytest.raises(ValueError):
            ShallowWaterSim(n_particles=0)

    def test_volume_conserved(self, sim):
        fresh = ShallowWaterSim(n_particles=4000)
        assert sim.total_volume() == pytest.approx(fresh.total_volume())
        # height field integrates to the total volume
        h = sim.height_field()
        cell_area = np.prod(sim._cell)
        assert (h.sum() * cell_area) == pytest.approx(sim.total_volume(), rel=1e-6)

    def test_particles_stay_in_domain(self, sim):
        b = sim.particles()
        assert sim.domain.contains_points(b.positions).all()

    def test_front_advances(self):
        s = ShallowWaterSim(n_particles=3000)
        fronts = [s.front_position()]
        for _ in range(5):
            s.step(30)
            fronts.append(s.front_position())
        assert fronts[-1] > fronts[0] + 0.5
        assert all(b >= a - 1e-6 for a, b in zip(fronts, fronts[1:]))

    def test_front_speed_near_ritter(self):
        """The surge front speed should be of order 2*sqrt(g*h0)."""
        s = ShallowWaterSim(n_particles=6000, friction=0.0)
        s.step(50)
        x0, t0 = s.front_position(), s.step_count * s.dt
        s.step(100)
        x1, t1 = s.front_position(), s.step_count * s.dt
        speed = (x1 - x0) / (t1 - t0)
        ritter = 2.0 * np.sqrt(9.81 * s.column_height)
        assert 0.3 * ritter < speed < 1.3 * ritter

    def test_column_height_drops(self):
        s = ShallowWaterSim(n_particles=4000)
        h0 = s.height_field()[: s.nx // 4].max()
        s.step(300)
        h1 = s.height_field()[: s.nx // 4].max()
        assert h1 < h0

    def test_deterministic(self):
        a = ShallowWaterSim(n_particles=1000)
        b = ShallowWaterSim(n_particles=1000)
        a.step(50)
        b.step(50)
        np.testing.assert_array_equal(a.xy, b.xy)

    def test_checkpoint_restore_exact_state(self):
        s = ShallowWaterSim(n_particles=2000)
        s.step(40)
        ckpt = s.particles()
        s2 = ShallowWaterSim(n_particles=2000)
        s2.restore(ckpt, s.step_count)
        assert s2.step_count == 40
        np.testing.assert_allclose(s2.xy, s.xy, atol=1e-6)
        np.testing.assert_allclose(s2.vel, s.vel, atol=1e-12)

    def test_restore_trajectory_continues(self):
        s = ShallowWaterSim(n_particles=2000)
        s.step(40)
        s2 = ShallowWaterSim(n_particles=2000)
        s2.restore(s.particles(), 40)
        s.step(40)
        s2.step(40)
        # float32 checkpoint positions -> small divergence allowed
        assert abs(s.front_position() - s2.front_position()) < 1e-3

    def test_restore_missing_attrs(self):
        from repro.types import ParticleBatch

        s = ShallowWaterSim(n_particles=10)
        with pytest.raises(ValueError, match="missing attributes"):
            s.restore(ParticleBatch(np.zeros((5, 3))), 0)

    def test_rank_data_partition(self):
        s = ShallowWaterSim(n_particles=3000)
        s.step(50)
        rd = s.rank_data(12)
        assert rd.total_particles == 3000
        for r in range(12):
            box = Box.from_array(rd.bounds[r])
            if len(rd.batches[r]):
                assert box.contains_points(rd.batches[r].positions).all()

    def test_early_imbalance_decays(self):
        s = ShallowWaterSim(n_particles=5000)
        early = s.rank_data(16)
        s.step(400)
        late = s.rank_data(16)

        def imb(rd):
            return rd.counts.max() / max(rd.counts.mean(), 1)

        assert imb(late) < imb(early)


class TestInjectionSim:
    def test_validation(self):
        with pytest.raises(ValueError):
            InjectionSim(injection_rate=-1)

    def test_population_grows_linearly(self):
        s = InjectionSim(injection_rate=100)
        assert s.n_particles == 0
        s.step(10)
        assert s.n_particles == 1000
        s.step(10)
        assert s.n_particles == 2000

    def test_particles_inside_domain(self):
        s = InjectionSim(injection_rate=200)
        s.step(100)
        b = s.particles()
        assert s.domain.contains_points(b.positions).all()

    def test_plume_rises(self):
        s = InjectionSim(injection_rate=100)
        s.step(20)
        z_early = s.pos[:, 2].mean()
        s.step(200)
        # the oldest particles have risen well above the inlets
        oldest = s.pos[s.age > 150]
        assert oldest[:, 2].mean() > z_early + 1.0

    def test_temperature_cools_with_age(self):
        s = InjectionSim(injection_rate=100)
        s.step(300)
        young = s.temperature[s.age < 10]
        old = s.temperature[s.age > 250]
        assert old.mean() < young.mean()

    def test_checkpoint_restore(self):
        s = InjectionSim(injection_rate=50, seed=3)
        s.step(60)
        s2 = InjectionSim(injection_rate=50, seed=3)
        s2.restore(s.particles(), s.step_count)
        assert s2.n_particles == s.n_particles
        np.testing.assert_allclose(s2.pos, s.pos, atol=1e-5)
        np.testing.assert_allclose(s2.age, s.age)

    def test_rank_data_refits_bounds(self):
        s = InjectionSim(injection_rate=200)
        s.step(30)
        early_box = Box.from_array(s.rank_data(8).bounds[0]).union(
            Box.from_array(s.rank_data(8).bounds[7])
        )
        s.step(300)
        late = s.rank_data(8)
        late_box = Box.from_array(late.bounds[0]).union(Box.from_array(late.bounds[7]))
        # the fitted grid grows as the plume fills the chamber
        assert late_box.extents[2] > early_box.extents[2]
        assert late.total_particles == s.n_particles

    def test_rank_data_empty_sim(self):
        s = InjectionSim(injection_rate=0)
        rd = s.rank_data(4)
        assert rd.total_particles == 0
        assert rd.nranks == 4
