"""Tests for the binning schemes (equi-width and equi-depth)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binning import (
    BINNING_EQUIDEPTH,
    BINNING_EQUIWIDTH,
    EquiDepthBinning,
    EquiWidthBinning,
    make_binning,
)
from repro.bitmaps import BITMAP_BITS, FULL_BITMAP, bitmap_of_values, query_bitmap

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestEquiWidth:
    def test_matches_free_functions(self):
        rng = np.random.default_rng(0)
        vals = rng.random(500) * 10
        b = EquiWidthBinning(0.0, 10.0)
        assert b.bitmap(vals) == bitmap_of_values(vals, 0.0, 10.0)
        assert b.query(2.0, 3.0) == query_bitmap(2.0, 3.0, 0.0, 10.0)

    def test_edges_linear(self):
        e = EquiWidthBinning(0.0, 32.0).edges()
        np.testing.assert_allclose(e, np.arange(33.0))

    def test_group_bitmaps(self):
        vals = np.array([0.1, 0.9, 0.5])
        gids = np.array([0, 0, 1])
        out = EquiWidthBinning(0.0, 1.0).group_bitmaps(vals, gids, 2)
        assert out[0] == bitmap_of_values(vals[:2], 0.0, 1.0)
        assert out[1] == bitmap_of_values(vals[2:], 0.0, 1.0)

    def test_equality(self):
        assert EquiWidthBinning(0, 1) == EquiWidthBinning(0, 1)
        assert EquiWidthBinning(0, 1) != EquiWidthBinning(0, 2)


class TestEquiDepth:
    def _skewed(self, n=20_000, seed=1):
        return np.exp(np.random.default_rng(seed).normal(0, 2, n))

    def test_fit_requires_values(self):
        with pytest.raises(ValueError):
            EquiDepthBinning.fit(np.array([]))

    def test_edge_validation(self):
        with pytest.raises(ValueError, match="33 edges"):
            EquiDepthBinning(np.arange(10.0))
        bad = np.arange(33.0)
        bad[5] = -1
        with pytest.raises(ValueError, match="non-decreasing"):
            EquiDepthBinning(bad)

    def test_bins_roughly_equal_population(self):
        vals = self._skewed()
        b = EquiDepthBinning.fit(vals)
        counts = np.bincount(b.bins(vals), minlength=BITMAP_BITS)
        # every bin holds within 3x of the ideal share
        ideal = len(vals) / BITMAP_BITS
        assert counts.min() > ideal / 3
        assert counts.max() < ideal * 3

    def test_equiwidth_wastes_bits_on_skew(self):
        """The motivation: equi-width bins collapse for log-normal data."""
        vals = self._skewed()
        ew = EquiWidthBinning(float(vals.min()), float(vals.max()))
        ew_counts = np.bincount(ew.bins(vals), minlength=BITMAP_BITS)
        ed = EquiDepthBinning.fit(vals)
        ed_counts = np.bincount(ed.bins(vals), minlength=BITMAP_BITS)
        assert (ew_counts > 0).sum() < (ed_counts > 0).sum()

    def test_no_false_negatives(self):
        """Bitmap of a value set must overlap any query containing one."""
        vals = self._skewed(2000)
        b = EquiDepthBinning.fit(vals)
        bm = b.bitmap(vals)
        for q in (0.01, 1.0, 50.0):
            nearest = vals[np.argmin(np.abs(vals - q))]
            qbm = b.query(nearest, nearest)
            assert int(bm) & int(qbm)

    def test_query_exact_semantics(self):
        vals = self._skewed(5000)
        b = EquiDepthBinning.fit(vals)
        lo, hi = np.quantile(vals, [0.4, 0.6])
        q = int(b.query(lo, hi))
        # every value in [lo, hi] must land in a set query bin
        inside = vals[(vals >= lo) & (vals <= hi)]
        bins = b.bins(inside)
        assert all((q >> b_) & 1 for b_ in np.unique(bins))

    def test_query_disjoint(self):
        b = EquiDepthBinning.fit(self._skewed(1000))
        assert b.query(b.hi + 1, b.hi + 2) == 0
        assert b.query(5, 4) == 0

    def test_query_full(self):
        b = EquiDepthBinning.fit(self._skewed(1000))
        assert b.query(b.lo - 1, b.hi + 1) == FULL_BITMAP

    def test_remap_to_equiwidth_conservative(self):
        vals = self._skewed(3000)
        b = EquiDepthBinning.fit(vals)
        bm = b.bitmap(vals)
        glo, ghi = float(vals.min()), float(vals.max()) * 2
        remapped = b.remap_to_equiwidth(bm, glo, ghi)
        direct = bitmap_of_values(vals, glo, ghi)
        assert int(remapped) & int(direct) == int(direct)

    def test_group_bitmaps_match_per_group(self):
        vals = self._skewed(1000)
        b = EquiDepthBinning.fit(vals)
        gids = np.arange(1000) % 5
        grouped = b.group_bitmaps(vals, gids, 5)
        for g in range(5):
            assert grouped[g] == b.bitmap(vals[gids == g])

    @given(st.lists(finite, min_size=33, max_size=200))
    @settings(max_examples=30)
    def test_bins_always_in_range(self, vals):
        vals = np.array(vals)
        b = EquiDepthBinning.fit(vals)
        bins = b.bins(vals)
        assert (bins >= 0).all() and (bins < BITMAP_BITS).all()


class TestMakeBinning:
    def test_roundtrip_equiwidth(self):
        b = make_binning(BINNING_EQUIWIDTH, 1.0, 5.0)
        assert b == EquiWidthBinning(1.0, 5.0)

    def test_roundtrip_equidepth(self):
        src = EquiDepthBinning.fit(np.random.default_rng(0).random(100))
        b = make_binning(BINNING_EQUIDEPTH, src.lo, src.hi, src.edges())
        assert b == src

    def test_equidepth_requires_edges(self):
        with pytest.raises(ValueError, match="edge table"):
            make_binning(BINNING_EQUIDEPTH, 0.0, 1.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            make_binning(99, 0.0, 1.0)
