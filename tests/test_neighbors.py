"""Tests for the neighbor-query engine (k-NN + fixed-radius).

The load-bearing property: the tree engine's neighbor lists are
**byte-identical** to the brute-force reference for every request shape
— same offsets, same distances, same ``(leaf, treelet, slot)`` keys,
same materialized rows — including balls straddling several leaf files
(served through ghost strips), empty neighborhoods, and exact distance
ties (broken by the global particle order-key, never by float luck).
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    NeighborRequest,
    QueryRequest,
    request_from_doc,
    request_to_doc,
)
from repro.bat import AttributeFilter
from repro.bat.builder import BATBuildConfig
from repro.core import RankData, TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.errors import InvalidRequestError
from repro.machines import testing_machine as make_test_machine
from repro.types import Box, ParticleBatch
from repro.workloads import grid_decompose
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

DOMAIN = Box((0.0, 0.0, 0.0), (4.0, 4.0, 1.0))


@pytest.fixture(scope="module", params=["v3", "v4"])
def dataset(request, tmp_path_factory):
    """One multi-file dataset per on-disk format, small files → many leaves."""
    data = make_rank_data(nranks=12, seed=5, min_n=300, max_n=1200)
    out = tmp_path_factory.mktemp(f"neigh_{request.param}")
    if request.param == "v4":
        writer = TwoPhaseWriter(
            make_test_machine(),
            target_size=32 * 1024,
            bat_config=BATBuildConfig(quantize_positions=True, compress=True),
        )
    else:
        writer = TwoPhaseWriter(make_test_machine(), target_size=32 * 1024)
    rep = writer.write(data, out_dir=out, name="n")
    ds = BATDataset(rep.metadata_path)
    assert ds.metadata.n_files >= 4  # the whole point is crossing files
    yield ds
    ds.close()


def assert_identical(a, b):
    """The byte-identity contract between two NeighborResults."""
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.keys, b.keys)
    assert a.distances.tobytes() == b.distances.tobytes()
    assert np.array_equal(a.centers, b.centers)
    if a.center_keys is None:
        assert b.center_keys is None
    else:
        assert np.array_equal(a.center_keys, b.center_keys)
    if a.batch is None or b.batch is None:
        assert (a.batch is None) == (b.batch is None)
        return
    pa, pb = a.batch.positions, b.batch.positions
    if pa is None or pb is None:
        assert (pa is None) == (pb is None)
    else:
        assert pa.tobytes() == pb.tobytes()
    assert sorted(a.batch.attributes) == sorted(b.batch.attributes)
    for name, arr in a.batch.attributes.items():
        assert arr.tobytes() == b.batch.attributes[name].tobytes()


def both_engines(ds, **kw):
    tree = ds.neighbors(NeighborRequest(engine="tree", **kw))
    brute = ds.neighbors(NeighborRequest(engine="brute", **kw))
    assert_identical(tree, brute)
    return tree, brute


class TestConstruction:
    """Degenerate requests die at construction, naming the field."""

    BOX = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))

    @pytest.mark.parametrize(
        "kw, msg",
        [
            (dict(center_box=BOX, k=0), "k must be >= 1"),
            (dict(center_box=BOX, k=True), "k must be an integer"),
            (dict(center_box=BOX, k=1.5), "k must be an integer"),
            (dict(center_box=BOX, radius=0.0), "radius must be a finite number > 0"),
            (dict(center_box=BOX, radius=-1.0), "radius must be a finite number > 0"),
            (dict(center_box=BOX, radius=float("inf")), "radius must be"),
            (dict(center_box=BOX, radius=float("nan")), "radius must be"),
            (dict(center_box=BOX, radius="wide"), "radius must be"),
            (dict(center_box=BOX, k=2, radius=0.1), "exactly one of k and radius"),
            (dict(center_box=BOX), "exactly one of k and radius"),
            (dict(center_box=BOX, points=((0, 0, 0),), k=1),
             "exactly one of center_box and points"),
            (dict(k=1), "exactly one of center_box and points"),
            (dict(points=(), k=1), "at least one center"),
            (dict(points=((0.0, 1.0),), k=1), "triple"),
            (dict(points=((0.0, 1.0, float("nan")),), k=1), "finite"),
            (dict(center_box="box", k=1), "center_box must be a Box"),
            (dict(center_box=BOX, k=1, engine="psychic"), "unknown neighbor engine"),
        ],
    )
    def test_invalid(self, kw, msg):
        with pytest.raises(InvalidRequestError, match=msg):
            NeighborRequest(**kw)

    def test_frozen_and_hashable(self):
        a = NeighborRequest(points=[[0, 1, 2]], k=3)
        b = NeighborRequest(points=((0.0, 1.0, 2.0),), k=3)
        # list input was frozen to float-triple tuples at construction
        assert a == b and hash(a) == hash(b)
        assert {a: "hit"}[b] == "hit"
        with pytest.raises(Exception):
            a.k = 5

    def test_coercion(self):
        r = NeighborRequest(center_box=self.BOX, k=np.int64(4))
        assert type(r.k) is int and r.k == 4
        r = NeighborRequest(center_box=self.BOX, radius=np.float32(0.25))
        assert type(r.radius) is float

    def test_doc_round_trip_is_plain_json(self):
        for req in (
            NeighborRequest(center_box=self.BOX, radius=0.2,
                            filters=(AttributeFilter("mass", 0.1, 0.9),),
                            columns=("mass",)),
            NeighborRequest(points=((0.5, 0.5, 0.5), (1.0, 2.0, 3.0)), k=7,
                            engine="brute"),
        ):
            doc = request_to_doc(req)
            json.dumps(doc)  # plain JSON types only
            assert doc["family"] == "neighbor"
            assert request_from_doc(doc) == req

    def test_family_absent_doc_is_a_query(self):
        # PR-8-era job stores persisted docs without a family tag
        doc = request_to_doc(QueryRequest(quality=0.5))
        doc.pop("family")
        back = request_from_doc(doc)
        assert isinstance(back, QueryRequest) and back.quality == 0.5

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidRequestError):
            request_from_doc({"family": "teleport"})


class TestByteIdentity:
    """Tree engine == brute-force oracle, bytes and all."""

    @SETTINGS
    @given(seed=st.integers(0, 2**31), radius=st.floats(0.05, 0.6))
    def test_radius_random_boxes(self, dataset, seed, radius):
        rng = np.random.default_rng(seed)
        lo = rng.uniform([0, 0, 0], [3, 3, 0.5])
        box = Box(tuple(lo), tuple(lo + rng.uniform(0.2, 1.0, 3)))
        both_engines(dataset, center_box=box, radius=radius)

    @SETTINGS
    @given(seed=st.integers(0, 2**31), k=st.integers(1, 40))
    def test_knn_random_points(self, dataset, seed, k):
        rng = np.random.default_rng(seed)
        pts = tuple(map(tuple, rng.uniform([0, 0, 0], [4, 4, 1], (5, 3))))
        both_engines(dataset, points=pts, k=k)

    def test_ball_straddles_many_leaves(self, dataset):
        # a fat ball at the domain center must reach several leaf files,
        # and the tree engine must serve the extra files as ghost strips
        tree, _ = both_engines(
            dataset, points=((2.0, 2.0, 0.5),), radius=1.0
        )
        assert tree.stats.files_opened >= 2
        assert len(tree) > 0

    def test_boundary_slab_uses_ghost_strips(self, dataset):
        # centers hug one leaf's bounds: boundary balls reach into the
        # adjacent files, which open as ghost strips, not full reads
        leaves = sorted(dataset.metadata.leaves, key=lambda l: l.count)
        mid = leaves[len(leaves) // 2].bounds
        eps = 1e-4
        slab = Box(
            tuple(v + eps for v in mid.lower),
            tuple(v - eps for v in mid.upper),
        )
        tree, _ = both_engines(dataset, center_box=slab, radius=0.15)
        assert tree.stats.ghost_files_opened >= 1
        assert tree.stats.pruned_files >= 1
        assert tree.center_keys is not None

    def test_empty_neighborhood(self, dataset):
        tree, _ = both_engines(
            dataset, points=((40.0, 40.0, 40.0),), radius=0.01
        )
        assert len(tree) == 0 and np.array_equal(tree.counts, [0])

    def test_knn_from_far_outside_still_finds_k(self, dataset):
        tree, _ = both_engines(dataset, points=((40.0, 40.0, 40.0),), k=9)
        assert np.array_equal(tree.counts, [9])
        # distances ascend within the list
        assert np.all(np.diff(tree.distances) >= 0)

    def test_filters_and_columns(self, dataset):
        filt = (AttributeFilter("mass", 0.25, 0.75),)
        tree, _ = both_engines(
            dataset,
            center_box=Box((1.0, 1.0, 0.0), (3.0, 3.0, 1.0)),
            radius=0.2,
            filters=filt,
            columns=("temp",),
        )
        assert set(tree.batch.attributes) == {"temp"}
        assert tree.batch.positions is None
        # every neighbor (and every center) passed the filter: re-running
        # unfiltered must return a superset of lists
        loose, _ = both_engines(
            dataset,
            center_box=Box((1.0, 1.0, 0.0), (3.0, 3.0, 1.0)),
            radius=0.2,
        )
        assert len(loose) >= len(tree)
        assert loose.n_centers >= tree.n_centers

    def test_k_larger_than_population_returns_everything(self, dataset):
        n = dataset.total_particles
        tree, _ = both_engines(dataset, points=((2.0, 2.0, 0.5),), k=n + 50)
        assert np.array_equal(tree.counts, [n])


class TestTieBreak:
    """Exact distance ties break on the global (leaf, treelet, slot) key."""

    @pytest.fixture(scope="class")
    def dupes(self, tmp_path_factory):
        # 8 particles at the *same* float32 position, spread over ranks so
        # they land in different leaf files; plus background filler
        rng = np.random.default_rng(3)
        bounds = grid_decompose(Box((0, 0, 0), (2, 2, 1)), 4, ndims=3)
        shared = np.array([1.0, 1.0, 0.5], dtype=np.float32)
        batches = []
        for lo, hi in bounds:
            pos = (lo + rng.random((150, 3)) * (np.array(hi) - lo)).astype(
                np.float32
            )
            pos[:2] = shared  # two exact duplicates per rank
            batches.append(ParticleBatch(pos, {"mass": rng.random(len(pos))}))
        data = RankData(
            bounds=bounds,
            counts=np.array([len(b) for b in batches]),
            batches=batches,
        )
        out = tmp_path_factory.mktemp("dupes")
        rep = TwoPhaseWriter(make_test_machine(), target_size=8 * 1024).write(
            data, out_dir=out, name="d"
        )
        ds = BATDataset(rep.metadata_path)
        yield ds
        ds.close()

    def test_knn_tie_break_is_the_order_key(self, dupes):
        tree, brute = both_engines(
            dupes, points=((1.0, 1.0, 0.5),), k=5
        )
        # all five hits are the duplicated position: distance exactly 0
        assert np.all(tree.distances == 0.0)
        # and the keys ascend strictly in (leaf, treelet, slot) order
        keys = [tuple(k) for k in tree.keys]
        assert keys == sorted(keys) and len(set(keys)) == len(keys)

    def test_radius_lists_sorted_by_key_within_ties(self, dupes):
        tree, _ = both_engines(
            dupes, points=((1.0, 1.0, 0.5),), radius=0.25
        )
        d, keys = tree.distances, [tuple(k) for k in tree.keys]
        for i in range(1, len(d)):
            assert d[i] > d[i - 1] or (
                d[i] == d[i - 1] and keys[i] > keys[i - 1]
            )


class TestGridPath:
    """The gridded candidate prefilter is invisible in the results."""

    def test_grid_and_flat_paths_agree(self, dataset, monkeypatch):
        import repro.bat.neighbors as nb

        req = dict(
            center_box=Box((0.5, 0.5, 0.0), (3.5, 3.5, 1.0)), radius=0.3
        )
        monkeypatch.setattr(nb, "_GRID_THRESHOLD", 0)
        gridded = dataset.neighbors(NeighborRequest(**req))
        monkeypatch.setattr(nb, "_GRID_THRESHOLD", 1 << 62)
        flat = dataset.neighbors(NeighborRequest(**req))
        assert_identical(gridded, flat)


class TestServeIntegration:
    """NeighborRequest through QueryService: caches, collapse, parity."""

    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.serve import DegradationConfig, QueryService, ServeConfig

        data = make_rank_data(nranks=9, seed=21)
        out = tmp_path_factory.mktemp("nserve")
        rep = TwoPhaseWriter(make_test_machine(), target_size=64 * 1024).write(
            data, out_dir=out, name="s"
        )
        svc = QueryService(
            rep.metadata_path,
            ServeConfig(
                capacity=2,
                result_ttl=None,
                degradation=DegradationConfig(enabled=False),
            ),
        )
        ds = BATDataset(rep.metadata_path)
        yield svc, ds
        svc.close()
        ds.close()

    REQ = NeighborRequest(
        center_box=Box((1.0, 1.0, 0.0), (2.5, 2.5, 1.0)), radius=0.3
    )

    def test_submit_matches_direct(self, served):
        svc, ds = served
        sid = svc.open_session()
        resp = svc.submit(sid, self.REQ).result(timeout=60)
        assert resp.neighbors is not None
        assert_identical(resp.neighbors, ds.neighbors(self.REQ))
        assert len(resp) == len(resp.neighbors)

    def test_result_cache_hit_on_repeat(self, served):
        from repro.serve.cache import neighbor_result_key

        svc, ds = served
        req = NeighborRequest(points=((1.5, 1.5, 0.5),), k=12)
        first = svc.execute(req)
        key = neighbor_result_key(0, req, svc.generation(0))
        assert svc.results.get(key) is not None
        again = svc.execute(req)
        assert_identical(first.neighbors, again.neighbors)
        assert_identical(first.neighbors, ds.neighbors(req))

    def test_execute_batch_path(self, served):
        svc, ds = served
        resp = svc.execute(self.REQ)
        assert resp.served_quality == 1.0
        assert_identical(resp.neighbors, ds.neighbors(self.REQ))
