"""Tests for the baseline strategies: AUG, FPP, shared file, IOR."""

import numpy as np
import pytest

from repro.baselines import (
    FilePerProcessReader,
    FilePerProcessWriter,
    SharedFileReader,
    SharedFileWriter,
    build_aug_plan,
    ior_benchmark,
)
from repro.machines import stampede2
from repro.machines import testing_machine as make_test_machine
from repro.types import Box
from tests.test_pipeline import make_rank_data


def grid_ranks(nx, ny, counts):
    bounds = []
    for i in range(nx):
        for j in range(ny):
            bounds.append([[i, j, 0], [i + 1, j + 1, 1]])
    return np.array(bounds, dtype=np.float64), np.asarray(counts, dtype=np.int64)


class TestAUG:
    def test_empty(self):
        plan = build_aug_plan(np.zeros((4, 2, 3)), np.zeros(4), 100.0, 1 << 20)
        assert plan.n_leaves == 0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            build_aug_plan(np.zeros((1, 2, 3)), np.ones(1), 1.0, 0)

    def test_uniform_data_near_target_cells(self):
        bounds, counts = grid_ranks(8, 8, np.full(64, 1000))
        plan = build_aug_plan(bounds, counts, 100.0, 400_000)
        # 6.4 MB / 0.4 MB -> ~16 cells
        assert 12 <= plan.n_leaves <= 20
        assert plan.imbalance() < 1.5

    def test_partition_complete(self):
        bounds, counts = grid_ranks(6, 6, np.random.default_rng(0).integers(0, 5000, 36))
        plan = build_aug_plan(bounds, counts, 100.0, 200_000)
        seen = np.concatenate([l.rank_ids for l in plan.leaves])
        active = np.nonzero(counts > 0)[0]
        assert sorted(seen.tolist()) == sorted(active.tolist())
        assert sum(l.count for l in plan.leaves) == counts.sum()

    def test_empty_cells_discarded(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[:8] = 10_000  # one dense stripe
        bounds, counts = grid_ranks(8, 8, counts)
        plan = build_aug_plan(bounds, counts, 100.0, 200_000)
        for leaf in plan.leaves:
            assert leaf.count > 0

    def test_uniform_density_assumption_hurts_clusters(self):
        """AUG's defining weakness: clustered data -> imbalanced cells."""
        counts = np.full(64, 10, dtype=np.int64)
        counts[0] = 100_000
        bounds, counts2 = grid_ranks(8, 8, counts)
        aug = build_aug_plan(bounds, counts2, 100.0, 500_000)
        from repro.core import AggTreeConfig, build_aggregation_tree

        adaptive = build_aggregation_tree(
            bounds, counts2, 100.0, AggTreeConfig(target_size=500_000)
        )
        assert adaptive.imbalance() <= aug.imbalance()

    def test_grid_fits_data_bounds(self):
        counts = np.zeros(64, dtype=np.int64)
        counts[:16] = 1000  # data only in the first two columns
        bounds, counts2 = grid_ranks(8, 8, counts)
        plan = build_aug_plan(bounds, counts2, 100.0, 100_000)
        assert plan.data_bounds.upper[0] <= 2.0 + 1e-9

    def test_query_box(self):
        bounds, counts = grid_ranks(4, 4, np.full(16, 1000))
        plan = build_aug_plan(bounds, counts, 100.0, 400_000)
        hits = plan.query_box(Box((0, 0, 0), (1.5, 1.5, 1)))
        assert hits
        for i in hits:
            assert plan.leaves[i].bounds.intersects(Box((0, 0, 0), (1.5, 1.5, 1)))


class TestFPP:
    def test_write_read_roundtrip(self, tmp_path):
        m = make_test_machine()
        data = make_rank_data(nranks=8, seed=1)
        w = FilePerProcessWriter(m)
        rep = w.write(data, out_dir=tmp_path, name="fpp")
        assert rep.n_files == 8
        assert rep.bandwidth > 0
        r = FilePerProcessReader(m)
        sizes = data.counts * data.bytes_per_particle
        rrep, batches = r.read(8, sizes, in_dir=tmp_path, name="fpp", shift=3)
        assert rrep.bandwidth > 0
        # rank r got writer (r+3)%8's particles
        for rank in range(8):
            src = (rank + 3) % 8
            assert len(batches[rank]) == data.counts[src]
            np.testing.assert_array_equal(
                batches[rank].positions, data.batches[src].positions
            )

    def test_empty_rank_skipped(self, tmp_path):
        m = make_test_machine()
        data = make_rank_data(nranks=4, seed=2)
        data.batches[1] = data.batches[1].select(np.zeros(0, dtype=np.int64))
        data.counts[1] = 0
        w = FilePerProcessWriter(m)
        rep = w.write(data, out_dir=tmp_path, name="gap")
        assert rep.n_files == 3
        r = FilePerProcessReader(m)
        _, batches = r.read(4, data.counts * 28.0, in_dir=tmp_path, name="gap")
        assert len(batches[1]) == 0

    def test_reader_size_mismatch(self):
        m = make_test_machine()
        with pytest.raises(ValueError, match="one size per"):
            FilePerProcessReader(m).read(4, np.ones(3))


class TestSharedFile:
    def test_write_read_roundtrip(self, tmp_path):
        m = make_test_machine()
        data = make_rank_data(nranks=6, seed=3)
        w = SharedFileWriter(m)
        path = tmp_path / "shared.npz"
        rep = w.write(data, out_path=path)
        assert rep.bandwidth > 0
        r = SharedFileReader(m)
        rrep, batches = r.read(6, data.total_bytes, in_path=path, shift=1)
        for rank in range(6):
            src = (rank + 1) % 6
            assert len(batches[rank]) == data.counts[src]

    def test_hdf5_mode_slower(self):
        m = make_test_machine()
        data = make_rank_data(nranks=64, seed=4, min_n=100, max_n=200)
        plain = SharedFileWriter(m).write(data)
        hdf5 = SharedFileWriter(m, hdf5=True).write(data)
        assert hdf5.elapsed > plain.elapsed


class TestIOR:
    def test_modes(self):
        m = stampede2()
        for mode in ("fpp", "shared", "hdf5"):
            r = ior_benchmark(m, 256, 4.06e6, mode)
            assert r.write_bandwidth > 0
            assert r.read_bandwidth > 0

    def test_invalid(self):
        m = stampede2()
        with pytest.raises(ValueError):
            ior_benchmark(m, 256, 4e6, "nope")
        with pytest.raises(ValueError):
            ior_benchmark(m, 0, 4e6, "fpp")

    def test_fpp_beats_shared_at_small_scale(self):
        m = stampede2()
        fpp = ior_benchmark(m, 96, 4.06e6, "fpp")
        shared = ior_benchmark(m, 96, 4.06e6, "shared")
        assert fpp.write_bandwidth > shared.write_bandwidth

    def test_fpp_flattens_at_scale(self):
        """The weak-scaling signature of Fig 5: FPP bandwidth stops growing."""
        m = stampede2()
        bw = [ior_benchmark(m, p, 4.06e6, "fpp").write_bandwidth for p in (384, 1536, 6144, 24576)]
        growth_early = bw[1] / bw[0]
        growth_late = bw[3] / bw[2]
        assert growth_late < growth_early
        assert growth_late < 1.3

    def test_hdf5_slowest_shared_mode(self):
        m = stampede2()
        shared = ior_benchmark(m, 1536, 4.06e6, "shared")
        hdf5 = ior_benchmark(m, 1536, 4.06e6, "hdf5")
        assert hdf5.write_bandwidth < shared.write_bandwidth
