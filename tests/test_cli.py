"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import TwoPhaseWriter
from repro.machines import testing_machine as make_test_machine
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=8, seed=77)
    out = tmp_path_factory.mktemp("cli")
    rep = TwoPhaseWriter(make_test_machine(), target_size=256 * 1024).write(
        data, out_dir=out, name="cli0"
    )
    return data, rep


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_box(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "x.json", "--box", "1,2,3"])

    def test_bad_filter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "x.json", "--filter", "temp"])

    def test_bad_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "weak-scaling", "--machine", "frontier"])


class TestInfo:
    def test_dataset_info(self, written, capsys):
        _, rep = written
        assert main(["info", rep.metadata_path]) == 0
        out = capsys.readouterr().out
        assert "leaf files" in out
        assert "mass" in out and "temp" in out

    def test_bat_file_info(self, written, capsys):
        _, rep = written
        from pathlib import Path

        bat = sorted(Path(rep.metadata_path).parent.glob("*.bat"))[0]
        assert main(["info", str(bat)]) == 0
        out = capsys.readouterr().out
        assert "treelets" in out
        assert "EquiWidthBinning" in out


class TestQuery:
    def test_plain_query(self, written, capsys):
        data, rep = written
        assert main(["query", rep.metadata_path]) == 0
        out = capsys.readouterr().out
        assert f"{data.total_particles:,}" in out

    def test_filtered_query_with_stats(self, written, capsys):
        _, rep = written
        assert main(
            ["query", rep.metadata_path, "--filter", "mass:0.5:1.0", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "mass: mean" in out

    def test_boxed_query(self, written, capsys):
        data, rep = written
        assert main(["query", rep.metadata_path, "--box", "0,0,0,1,1,1"]) == 0
        out = capsys.readouterr().out
        matched = int(out.split("matched ")[1].split(" ")[0].replace(",", ""))
        allpos = np.concatenate([b.positions for b in data.batches])
        from repro.types import Box

        assert matched == Box((0, 0, 0), (1, 1, 1)).contains_points(allpos).sum()

    def test_query_output_npz(self, written, tmp_path, capsys):
        _, rep = written
        dest = tmp_path / "result.npz"
        assert main(["query", rep.metadata_path, "--quality", "0.2", "--output", str(dest)]) == 0
        with np.load(dest) as z:
            assert "positions" in z.files
            assert len(z["positions"]) > 0


class TestServe:
    def test_serve_replays_traces(self, written, capsys):
        _, rep = written
        assert main(
            [
                "serve", rep.metadata_path,
                "--capacity", "2", "--sessions", "3", "--ops", "3", "--seed", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "served 9 requests from 3 sessions" in out
        assert "byte-verified" in out
        assert "p99" in out

    def test_serve_json_snapshot(self, written, capsys):
        import json

        _, rep = written
        assert main(
            [
                "serve", rep.metadata_path,
                "--sessions", "2", "--ops", "2", "--no-degradation", "--json",
            ]
        ) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["requests"]["completed"] == 4
        assert doc["requests"]["rejected"] == 0
        assert not doc["degradation"]["enabled"]
        assert set(doc["caches"]) == {
            "results", "collapse", "plans", "files", "decoded_columns"
        }


class TestBench:
    def test_weak_scaling_smoke(self, capsys):
        assert main(["bench", "weak-scaling", "--machine", "testing_machine", "--ranks", "8,16"]) == 0
        out = capsys.readouterr().out
        assert "write bandwidth" in out
        assert "ior-fpp" in out


class TestServeSharded:
    def test_serve_with_shards(self, written, capsys):
        _, rep = written
        assert main(
            [
                "serve", rep.metadata_path, "--shards", "2",
                "--capacity", "2", "--sessions", "3", "--ops", "2", "--seed", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 shard processes" in out
        assert "byte-verified" in out
        assert "fanout mean" in out

    def test_shards_and_stream_conflict(self, written, capsys):
        _, rep = written
        assert main(
            ["serve", rep.metadata_path, "--shards", "2", "--stream"]
        ) == 2
        assert "single-process" in capsys.readouterr().err


class TestJobs:
    def test_submit_resume_status_cycle(self, written, tmp_path, capsys):
        _, rep = written
        store = str(tmp_path / "jobs.db")
        assert main(
            ["jobs", "submit", store, "j1", rep.metadata_path,
             "--n", "6", "--seed", "5"]
        ) == 0
        assert "6 tasks added" in capsys.readouterr().out
        # resubmission is idempotent
        assert main(
            ["jobs", "submit", store, "j1", rep.metadata_path,
             "--n", "6", "--seed", "5"]
        ) == 0
        assert "0 tasks added" in capsys.readouterr().out
        # a bounded run leaves work outstanding and exits nonzero
        assert main(
            ["jobs", "run", store, "j1", "--capacity", "2", "--max-tasks", "2"]
        ) == 1
        assert "2/6 done" in capsys.readouterr().out
        # resume (source recorded at submit) drains the rest
        assert main(["jobs", "resume", store, "j1", "--capacity", "2"]) == 0
        assert "6/6 done" in capsys.readouterr().out
        assert main(["jobs", "status", store]) == 0
        out = capsys.readouterr().out
        assert "j1: 6/6 done" in out and "0 dead" in out

    def test_status_json(self, written, tmp_path, capsys):
        import json

        _, rep = written
        store = str(tmp_path / "jobs.db")
        main(["jobs", "submit", store, "j1", rep.metadata_path, "--n", "2"])
        capsys.readouterr()
        assert main(["jobs", "status", store, "j1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["job_id"] == "j1" and doc["total"] == 2


class TestNeighborQuery:
    def test_knn_at_points(self, written, capsys):
        _, rep = written
        assert main([
            "query", str(rep.metadata_path),
            "--at", "2,2,0.5", "--at", "1,1,0.2", "--knn", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 centers (k=4): 8 neighbors" in out
        assert "ghost" in out

    def test_radius_over_box(self, written, capsys, tmp_path):
        _, rep = written
        npz = tmp_path / "neigh.npz"
        assert main([
            "query", str(rep.metadata_path),
            "--box", "1,1,0,3,3,1", "--radius", "0.25",
            "--stats", "--output", str(npz),
        ]) == 0
        out = capsys.readouterr().out
        assert "radius=0.25" in out and "list sizes" in out
        saved = np.load(npz)
        assert {"centers", "offsets", "distances", "keys"} <= set(saved)
        assert saved["offsets"][-1] == len(saved["distances"])

    def test_brute_engine_matches_tree(self, written, capsys):
        _, rep = written
        argv = ["query", str(rep.metadata_path),
                "--at", "2,2,0.5", "--knn", "6"]
        assert main(argv) == 0
        tree_out = capsys.readouterr().out.splitlines()[0]
        assert main(argv + ["--engine", "brute"]) == 0
        brute_out = capsys.readouterr().out.splitlines()[0]
        # same centers and neighbor totals from both engines
        assert tree_out.split("(tested")[0] == brute_out.split("(tested")[0]

    def test_bad_point_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "x.json", "--at", "1,2", "--knn", "3"]
            )

    def test_knn_and_radius_conflict(self, written):
        from repro.errors import InvalidRequestError

        _, rep = written
        with pytest.raises(InvalidRequestError, match="exactly one of k and radius"):
            main(["query", str(rep.metadata_path),
                  "--at", "1,1,0.5", "--knn", "3", "--radius", "0.2"])
