"""Tests pinning the machine-model calibration to its documented targets."""

import pytest

from repro.bench.calibration import (
    fpp_bandwidth,
    fpp_knee,
    fpp_saturation_bandwidth,
    measure_bat_build_rate,
    solve_create_rate,
)
from repro.machines import stampede2, summit


class TestFPPKnee:
    def test_stampede2_knee_in_paper_decade(self):
        """Paper: FPP degrades at 1536 ranks on Stampede2 — the model's
        knee must land within the neighbouring sweep points."""
        knee = fpp_knee(stampede2())
        assert 256 <= knee <= 4096

    def test_summit_knee_earlier_than_stampede2(self):
        """Paper: FPP degrades at 672 ranks on Summit — earlier than on
        Stampede2."""
        s = fpp_knee(summit())
        assert 32 <= s <= 1344
        assert s <= fpp_knee(stampede2())

    def test_bandwidth_validation(self):
        with pytest.raises(ValueError):
            fpp_bandwidth(stampede2(), 0)


class TestSaturation:
    def test_plateau_matches_scan(self):
        """The closed-form plateau matches the modeled curve at scale."""
        for m in (stampede2(), summit()):
            plateau = fpp_saturation_bandwidth(m)
            measured = fpp_bandwidth(m, 1 << 16)
            assert measured == pytest.approx(plateau, rel=0.10)

    def test_plateau_below_peak(self):
        for m in (stampede2(), summit()):
            assert fpp_saturation_bandwidth(m) < m.filesystem.peak_write_bw

    def test_solve_roundtrip(self):
        """solve_create_rate inverts the plateau formula exactly."""
        m = stampede2()
        plateau = fpp_saturation_bandwidth(m)
        rate = solve_create_rate(m, plateau)
        assert rate == pytest.approx(m.filesystem.create_rate, rel=1e-9)

    def test_solve_monotone(self):
        m = stampede2()
        assert solve_create_rate(m, 100e9) > solve_create_rate(m, 10e9)

    def test_solve_validation(self):
        m = stampede2()
        with pytest.raises(ValueError):
            solve_create_rate(m, 0.0)
        with pytest.raises(ValueError):
            solve_create_rate(m, m.filesystem.peak_write_bw * 2)


class TestMeasuredBuildRate:
    def test_positive_and_plausible(self):
        rate = measure_bat_build_rate(n_particles=60_000, n_attrs=3)
        # pure-Python builds run well below the paper's C++ rates but
        # must land in a sane band on any host
        assert 1e3 < rate < 1e9
