"""Tests for 32-bit binned bitmap indexing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmaps import (
    BITMAP_BITS,
    FULL_BITMAP,
    BitmapDictionary,
    bitmap_bins,
    bitmap_of_values,
    bitmaps_by_group,
    query_bitmap,
    remap_bitmap,
    value_bins,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestValueBins:
    def test_endpoints(self):
        bins = value_bins(np.array([0.0, 1.0]), 0.0, 1.0)
        assert bins[0] == 0
        assert bins[1] == BITMAP_BITS - 1

    def test_out_of_range_clamps(self):
        bins = value_bins(np.array([-5.0, 5.0]), 0.0, 1.0)
        assert bins[0] == 0
        assert bins[1] == BITMAP_BITS - 1

    def test_degenerate_range(self):
        bins = value_bins(np.array([1.0, 2.0, 3.0]), 2.0, 2.0)
        assert (bins == 0).all()

    def test_uniform_coverage(self):
        vals = np.linspace(0, 1, 3200)
        bins = value_bins(vals, 0.0, 1.0)
        assert set(bins) == set(range(BITMAP_BITS))


class TestBitmapOfValues:
    def test_empty(self):
        assert bitmap_of_values(np.array([]), 0, 1) == 0

    def test_single_value(self):
        bm = bitmap_of_values(np.array([0.5]), 0.0, 1.0)
        assert bin(int(bm)).count("1") == 1
        assert bitmap_bins(bm) == [16]

    def test_full_span(self):
        vals = np.linspace(0, 1, 1000)
        assert bitmap_of_values(vals, 0.0, 1.0) == FULL_BITMAP


class TestBitmapsByGroup:
    def test_matches_per_group_computation(self):
        rng = np.random.default_rng(0)
        vals = rng.random(500)
        gids = rng.integers(0, 7, 500)
        grouped = bitmaps_by_group(vals, gids, 7, 0.0, 1.0)
        for g in range(7):
            expected = bitmap_of_values(vals[gids == g], 0.0, 1.0)
            assert grouped[g] == expected

    def test_empty_group_zero(self):
        vals = np.array([0.5])
        grouped = bitmaps_by_group(vals, np.array([2]), 4, 0.0, 1.0)
        assert grouped[0] == 0 and grouped[1] == 0 and grouped[3] == 0
        assert grouped[2] != 0

    def test_no_values(self):
        assert (bitmaps_by_group(np.array([]), np.array([], dtype=int), 3, 0, 1) == 0).all()


class TestQueryBitmap:
    def test_inverted_query_empty(self):
        assert query_bitmap(2.0, 1.0, 0.0, 10.0) == 0

    def test_disjoint_query_empty(self):
        assert query_bitmap(20.0, 30.0, 0.0, 10.0) == 0

    def test_full_overlap(self):
        assert query_bitmap(-1.0, 11.0, 0.0, 10.0) == FULL_BITMAP

    def test_degenerate_range_full(self):
        assert query_bitmap(0.0, 0.5, 1.0, 1.0) == FULL_BITMAP

    def test_no_false_negatives_exhaustive(self):
        """Any value inside the query must hit a set query-bitmap bit."""
        lo, hi = 0.0, 10.0
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b = sorted(rng.uniform(lo - 2, hi + 2, 2))
            q = query_bitmap(a, b, lo, hi)
            vals = rng.uniform(max(a, lo), min(b, hi), 100) if a <= hi and b >= lo else []
            for v in np.atleast_1d(vals):
                vb = bitmap_of_values(np.array([v]), lo, hi)
                assert int(q) & int(vb), f"value {v} in [{a},{b}] missed"

    @given(finite, finite, finite, finite)
    def test_query_and_value_consistency(self, a, b, v, w):
        lo, hi = sorted((v, w))
        qlo, qhi = sorted((a, b))
        q = query_bitmap(qlo, qhi, lo, hi)
        # any in-range value inside the query interval must overlap q
        mid = (max(qlo, lo) + min(qhi, hi)) / 2
        if qlo <= mid <= qhi and lo <= mid <= hi:
            vb = bitmap_of_values(np.array([mid]), lo, hi)
            assert int(q) & int(vb)


class TestRemapBitmap:
    def test_zero_stays_zero(self):
        assert remap_bitmap(0, 0, 1, 0, 10) == 0

    def test_identity_remap_covers(self):
        bm = bitmap_of_values(np.array([0.3, 0.7]), 0.0, 1.0)
        remapped = remap_bitmap(bm, 0.0, 1.0, 0.0, 1.0)
        assert int(remapped) & int(bm) == int(bm)

    def test_local_to_global_no_false_negatives(self):
        """Values indexed against a local range must still match globally."""
        rng = np.random.default_rng(2)
        glo, ghi = 0.0, 100.0
        llo, lhi = 30.0, 40.0
        vals = rng.uniform(llo, lhi, 200)
        local = bitmap_of_values(vals, llo, lhi)
        remapped = remap_bitmap(local, llo, lhi, glo, ghi)
        global_direct = bitmap_of_values(vals, glo, ghi)
        assert int(remapped) & int(global_direct) == int(global_direct)

    def test_degenerate_local_range(self):
        bm = bitmap_of_values(np.array([5.0]), 5.0, 5.0)
        remapped = remap_bitmap(bm, 5.0, 5.0, 0.0, 10.0)
        direct = bitmap_of_values(np.array([5.0]), 0.0, 10.0)
        assert int(remapped) & int(direct)


class TestBitmapDictionary:
    def test_dedup(self):
        d = BitmapDictionary()
        assert d.add(0b1010) == 0
        assert d.add(0b1111) == 1
        assert d.add(0b1010) == 0
        assert len(d) == 2
        assert d[1] == 0b1111

    def test_add_many_roundtrip(self):
        d = BitmapDictionary()
        bitmaps = np.array([3, 7, 3, 9, 7], dtype=np.uint32)
        ids = d.add_many(bitmaps)
        assert ids.dtype == np.uint16
        recovered = np.array([d[i] for i in ids], dtype=np.uint32)
        np.testing.assert_array_equal(recovered, bitmaps)

    def test_array_roundtrip(self):
        d = BitmapDictionary()
        d.add(1)
        d.add(2)
        d2 = BitmapDictionary.from_array(d.as_array())
        assert len(d2) == 2
        assert d2[0] == 1 and d2[1] == 2

    def test_overflow(self):
        d = BitmapDictionary()
        d._bitmaps = list(range(BitmapDictionary.MAX_ENTRIES))
        d._ids = {v: v for v in d._bitmaps}
        with pytest.raises(OverflowError):
            d.add(BitmapDictionary.MAX_ENTRIES + 7)

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=200))
    def test_ids_recover_bitmaps(self, bms):
        d = BitmapDictionary()
        ids = [d.add(b) for b in bms]
        assert all(d[i] == b for i, b in zip(ids, bms))
        assert len(d) == len(set(bms))
