"""Property tests for the word-aligned bit-packing kernels and qauto.

The v4 ``delta`` wire format predates the vectorized kernels, so the
kernels must stay byte-identical to the historical per-bit matrix
(``np.packbits(..., bitorder="little")``) at every width — that identity
is what lets files written by earlier versions decode unchanged. These
tests pin it with a reference implementation, drive the kernels through
hypothesis at the dtype extremes (uint64-max deltas, widths 0/1/64,
empty and single-element columns), and property-test that
``quantize_auto`` never exceeds the caller's error bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bat.codecs import (
    _DELTA_HEADER,
    _pack_bits_le,
    _unpack_bits_le,
    _zigzag,
    get_codec,
)
from repro.errors import CodecError


def reference_pack(zig: np.ndarray, width: int) -> bytes:
    """The historical n x width bit-matrix packer the kernels replaced."""
    if width == 0 or zig.size == 0:
        return b""
    bits = (
        (zig[:, None] >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    return np.packbits(bits, bitorder="little").tobytes()


def masked(values: list[int], width: int) -> np.ndarray:
    arr = np.array(values, dtype=np.uint64)
    if width < 64:
        arr &= (np.uint64(1) << np.uint64(width)) - np.uint64(1)
    return arr


class TestPackKernels:
    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 64),
        values=st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=300),
    )
    def test_byte_identical_to_reference_packer(self, width, values):
        zig = masked(values, width)
        assert _pack_bits_le(zig, width) == reference_pack(zig, width)

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 64),
        values=st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=300),
    )
    def test_round_trip(self, width, values):
        zig = masked(values, width)
        packed = _pack_bits_le(zig, width)
        out = _unpack_bits_le(packed, 0, zig.size, width)
        np.testing.assert_array_equal(out, zig)

    @pytest.mark.parametrize("width", [1, 63, 64])
    def test_all_ones_at_extreme_widths(self, width):
        zig = masked([2**64 - 1] * 129, width)
        packed = _pack_bits_le(zig, width)
        assert packed == reference_pack(zig, width)
        np.testing.assert_array_equal(
            _unpack_bits_le(packed, 0, zig.size, width), zig
        )

    def test_empty_and_width_zero(self):
        assert _pack_bits_le(np.zeros(0, dtype=np.uint64), 7) == b""
        assert _unpack_bits_le(b"", 0, 0, 7).size == 0
        assert _unpack_bits_le(b"", 0, 0, 0).size == 0
        np.testing.assert_array_equal(
            _unpack_bits_le(b"\x00", 0, 3, 0), np.zeros(3, dtype=np.uint64)
        )

    def test_unpack_reads_at_offset(self):
        zig = masked([5, 6, 7, 1023], 10)
        buf = b"\xaa\xbb\xcc" + _pack_bits_le(zig, 10)
        np.testing.assert_array_equal(_unpack_bits_le(buf, 3, 4, 10), zig)


#: columns that stress the delta path's 64-bit wrapping arithmetic
EXTREME_COLUMNS = [
    np.array([], dtype=np.uint64),
    np.array([0], dtype=np.uint64),
    np.array([2**64 - 1], dtype=np.uint64),
    np.array([0, 2**64 - 1], dtype=np.uint64),  # max positive delta
    np.array([2**64 - 1, 0], dtype=np.uint64),  # max negative delta
    np.array([0, 2**64 - 1, 0, 2**64 - 1, 1], dtype=np.uint64),
    np.array([2**63 - 1, -(2**63), 2**63 - 1], dtype=np.int64),
    np.array([-(2**63), 2**63 - 1], dtype=np.int64),
    np.array([7] * 100, dtype=np.uint32),  # width-0 deltas
    np.arange(1000, dtype=np.uint16),  # width-1 deltas
]


class TestDeltaCodecExtremes:
    @pytest.mark.parametrize("col", EXTREME_COLUMNS, ids=range(len(EXTREME_COLUMNS)))
    def test_round_trip(self, col):
        codec = get_codec("delta")
        payload, p0, p1 = codec.encode(col)
        out = codec.decode(payload, col.dtype, col.size, p0, p1)
        np.testing.assert_array_equal(out, col)

    @pytest.mark.parametrize("col", EXTREME_COLUMNS, ids=range(len(EXTREME_COLUMNS)))
    def test_payload_matches_legacy_encoder(self, col):
        """Payloads written by the pre-kernel encoder decode unchanged."""
        codec = get_codec("delta")
        payload, _, _ = codec.encode(col)
        if col.size == 0:
            assert payload == _DELTA_HEADER.pack(0, 0)
            return
        vals = col.astype(np.int64, copy=False)
        zig = _zigzag(vals)
        width = int(zig.max()).bit_length() if zig.size else 0
        legacy = _DELTA_HEADER.pack(int(vals[0].view(np.uint64)), width)
        if width and zig.size:
            legacy += reference_pack(zig, width)
        assert payload == legacy
        out = codec.decode(legacy, col.dtype, col.size, 0.0, 0.0)
        np.testing.assert_array_equal(out, col)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(0, 2**64 - 1), min_size=0, max_size=200),
    )
    def test_round_trip_random_uint64(self, values):
        col = np.array(values, dtype=np.uint64)
        codec = get_codec("delta")
        payload, p0, p1 = codec.encode(col)
        out = codec.decode(payload, col.dtype, col.size, p0, p1)
        np.testing.assert_array_equal(out, col)

    def test_decode_accepts_memoryview(self):
        col = np.arange(37, dtype=np.int64) * 13
        codec = get_codec("delta")
        payload, _, _ = codec.encode(col)
        out = codec.decode(memoryview(payload), col.dtype, col.size, 0.0, 0.0)
        np.testing.assert_array_equal(out, col)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=400),
        cuts=st.lists(st.integers(0, 400), min_size=0, max_size=6),
    )
    def test_encode_segments_identical_to_per_segment_encode(self, values, cuts):
        col = np.array(values, dtype=np.int64)
        starts = np.array(sorted([0, *[min(c, col.size) for c in cuts], col.size]))
        codec = get_codec("delta")
        batched = codec.encode_segments(col, starts)
        singles = [
            codec.encode(col[int(starts[i]) : int(starts[i + 1])])
            for i in range(len(starts) - 1)
        ]
        assert batched == singles

    def test_encode_segments_multidim_rows(self):
        col = (np.arange(60, dtype=np.uint32) * 7).reshape(20, 3)
        starts = np.array([0, 4, 4, 11, 20])
        codec = get_codec("delta")
        batched = codec.encode_segments(col, starts)
        singles = [
            codec.encode(col[int(starts[i]) : int(starts[i + 1])])
            for i in range(len(starts) - 1)
        ]
        assert batched == singles


class TestQuantizeAuto:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, width=64),
            min_size=1,
            max_size=300,
        ),
        bound_exp=st.integers(-6, 2),
    )
    def test_caller_bound_respected(self, values, bound_exp):
        col = np.array(values, dtype=np.float64)
        bound = 10.0**bound_exp
        codec = get_codec(f"quantize_auto:{bound}")
        try:
            payload, p0, p1 = codec.encode(col)
        except CodecError:
            # bound unachievable at <= 32 bits for this range: legal outcome
            return
        out = codec.decode(payload, col.dtype, col.size, p0, p1)
        err = float(np.max(np.abs(out - col))) if col.size else 0.0
        # recorded p0 is the achieved worst-case bound; both orderings hold
        assert err <= p0 <= bound

    def test_decodes_through_registered_singleton(self):
        col = np.linspace(250.0, 350.0, 97)
        payload, p0, p1 = get_codec("quantize_auto:0.5").encode(col)
        out = get_codec("qauto").decode(payload, col.dtype, col.size, p0, p1)
        assert float(np.max(np.abs(out - col))) <= p0 <= 0.5

    def test_tighter_bound_spends_more_bits(self):
        col = np.linspace(0.0, 1.0, 1000)
        loose, _, _ = get_codec("quantize_auto:0.1").encode(col)
        tight, _, _ = get_codec("quantize_auto:1e-6").encode(col)
        assert len(tight) > len(loose)

    def test_unachievable_bound_raises(self):
        col = np.array([0.0, 1e30])
        with pytest.raises(CodecError):
            get_codec("quantize_auto:1e-12").encode(col)

    def test_constant_column_is_exact(self):
        col = np.full(64, 3.25)
        payload, p0, p1 = get_codec("quantize_auto:1e-9").encode(col)
        out = get_codec("qauto").decode(payload, col.dtype, col.size, p0, p1)
        np.testing.assert_array_equal(out, col)
