"""Integration tests: the two-phase write/read pipelines end to end."""

import numpy as np
import pytest

from repro.baselines import build_aug_plan
from repro.core import (
    DatasetMetadata,
    RankData,
    TwoPhaseReader,
    TwoPhaseWriter,
)
from repro.core.writer import PHASE_NAMES
from repro.machines import testing_machine as make_test_machine
from repro.types import Box, ParticleBatch
from repro.workloads import grid_decompose


def make_rank_data(nranks=16, seed=0, min_n=200, max_n=3000, domain=None):
    """Materialized RankData on a rank grid with nonuniform counts."""
    rng = np.random.default_rng(seed)
    domain = domain or Box((0.0, 0.0, 0.0), (4.0, 4.0, 1.0))
    bounds = grid_decompose(domain, nranks, ndims=3)
    batches = []
    for r in range(nranks):
        n = int(rng.integers(min_n, max_n))
        lo, hi = bounds[r]
        pos = lo + rng.random((n, 3)) * (hi - lo)
        batches.append(
            ParticleBatch(
                pos.astype(np.float32),
                {"mass": rng.random(n), "temp": rng.normal(300, 30, n)},
            )
        )
    return RankData(
        bounds=bounds, counts=np.array([len(b) for b in batches]), batches=batches
    )


@pytest.fixture(scope="module")
def machine():
    return make_test_machine()


@pytest.fixture(scope="module")
def written(machine, tmp_path_factory):
    data = make_rank_data()
    out = tmp_path_factory.mktemp("pipeline")
    writer = TwoPhaseWriter(machine, target_size=256 * 1024)
    report = writer.write(data, out_dir=out, name="ts0")
    return data, out, report


class TestWritePipeline:
    def test_report_sanity(self, written):
        data, _, report = written
        assert report.elapsed > 0
        assert report.bandwidth > 0
        assert report.total_bytes == pytest.approx(data.total_bytes)
        assert report.n_files == len(report.file_sizes)
        assert set(report.breakdown) == set(PHASE_NAMES)

    def test_files_written(self, written):
        _, out, report = written
        bats = sorted(out.glob("*.bat"))
        assert len(bats) == report.n_files
        assert report.metadata_path is not None

    def test_metadata_roundtrip(self, written):
        data, _, report = written
        meta = DatasetMetadata.load(report.metadata_path)
        assert meta.total_particles == data.total_particles
        assert meta.nranks == data.nranks
        assert set(meta.attr_ranges) == {"mass", "temp"}
        # global range covers every leaf-local range
        for leaf in meta.leaves:
            for name, (lo, hi) in leaf.attr_ranges.items():
                glo, ghi = meta.attr_ranges[name]
                assert glo <= lo and hi <= ghi

    def test_file_sizes_near_target(self, written):
        _, _, report = written
        # most files near the target; none wildly above (uniform-ish data)
        assert report.file_sizes.max() < 4 * 256 * 1024

    def test_aggregators_spread(self, written):
        _, _, report = written
        aggs = [l.aggregator for l in report.metadata.leaves]
        assert len(set(aggs)) == len(aggs)

    def test_counts_only_write(self, machine):
        data = make_rank_data()
        counts_only = RankData(
            bounds=data.bounds, counts=data.counts, bytes_per_particle=data.bytes_per_particle
        )
        writer = TwoPhaseWriter(machine, target_size=256 * 1024)
        rep_m = writer.write(data)
        rep_c = writer.write(counts_only)
        assert rep_c.n_files == rep_m.n_files
        # modeled elapsed identical: timing never depends on materialization
        assert rep_c.elapsed == pytest.approx(rep_m.elapsed, rel=0.05)

    def test_aug_strategy_plugs_in(self, machine, tmp_path):
        data = make_rank_data()
        writer = TwoPhaseWriter(machine, target_size=256 * 1024, strategy=build_aug_plan)
        report = writer.write(data, out_dir=tmp_path, name="aug0")
        assert report.n_files > 0
        meta = DatasetMetadata.load(tmp_path / "aug0.meta.json")
        assert meta.total_particles == data.total_particles

    def test_unknown_strategy(self, machine):
        with pytest.raises(ValueError, match="strategy"):
            TwoPhaseWriter(machine, strategy="bogus").write(make_rank_data(4))

    def test_config_disagreement(self, machine):
        from repro.core import AggTreeConfig

        with pytest.raises(ValueError, match="disagrees"):
            TwoPhaseWriter(machine, target_size=1024, agg_config=AggTreeConfig(target_size=2048))


class TestReadPipeline:
    def test_restart_read_recovers_everything(self, written, machine):
        data, out, report = written
        reader = TwoPhaseReader(machine)
        rep = reader.read(report.metadata, np.roll(data.bounds, -1, axis=0), data_dir=out)
        assert sum(len(b) for b in rep.batches) == data.total_particles
        assert rep.elapsed > 0
        assert rep.bandwidth > 0

    def test_each_rank_gets_its_region(self, written, machine):
        data, out, report = written
        reader = TwoPhaseReader(machine)
        rep = reader.read(report.metadata, data.bounds, data_dir=out)
        for r in range(data.nranks):
            box = Box.from_array(data.bounds[r])
            got = rep.batches[r]
            assert box.contains_points(got.positions).all()
            # the rank's own particles all come back
            expected = box.contains_points(
                np.concatenate([b.positions for b in data.batches])
            ).sum()
            assert len(got) == expected

    def test_read_at_different_scale(self, written, machine):
        """Data written at 16 ranks restarts on 4 and on 64 ranks."""
        data, out, report = written
        reader = TwoPhaseReader(machine)
        domain = Box((0.0, 0.0, 0.0), (4.0, 4.0, 1.0))
        for nranks in (4, 64):
            rb = grid_decompose(domain, nranks, ndims=3)
            rep = reader.read(report.metadata, rb, data_dir=out)
            assert sum(len(b) for b in rep.batches) == data.total_particles

    def test_counts_only_read_estimates_bytes(self, written, machine):
        data, _, report = written
        reader = TwoPhaseReader(machine)
        rep = reader.read(report.metadata, data.bounds)
        assert rep.batches is None
        assert rep.total_bytes > 0

    def test_partial_region_read(self, written, machine):
        data, out, report = written
        reader = TwoPhaseReader(machine)
        rb = np.array([[[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]])
        rep = reader.read(report.metadata, rb, data_dir=out)
        box = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        allpos = np.concatenate([b.positions for b in data.batches])
        assert len(rep.batches[0]) == box.contains_points(allpos).sum()

    def test_read_more_files_than_ranks(self, machine, tmp_path):
        data = make_rank_data(nranks=32, seed=3)
        writer = TwoPhaseWriter(machine, target_size=64 * 1024)  # many small files
        report = writer.write(data, out_dir=tmp_path, name="many")
        assert report.n_files > 4
        reader = TwoPhaseReader(machine)
        rb = grid_decompose(Box((0, 0, 0), (4, 4, 1)), 4, ndims=3)
        rep = reader.read(report.metadata, rb, data_dir=tmp_path)
        assert sum(len(b) for b in rep.batches) == data.total_particles


class TestEventNetworkModel:
    def test_write_read_with_event_model(self, machine, tmp_path):
        """The full pipeline runs under the discrete-event network model
        and produces timings close to the phase model on balanced data."""
        data = make_rank_data(nranks=12, seed=21)
        rep_phase = TwoPhaseWriter(machine, target_size=256 * 1024).write(data)
        rep_event = TwoPhaseWriter(
            machine, target_size=256 * 1024, network_model="event"
        ).write(data, out_dir=tmp_path, name="ev")
        assert rep_event.n_files == rep_phase.n_files
        assert rep_event.elapsed == pytest.approx(rep_phase.elapsed, rel=0.3)

        reader = TwoPhaseReader(machine, network_model="event")
        rrep = reader.read(rep_event.metadata, data.bounds, data_dir=tmp_path)
        assert sum(len(b) for b in rrep.batches) == data.total_particles

    def test_invalid_model_rejected(self, machine):
        with pytest.raises(ValueError, match="network_model"):
            TwoPhaseWriter(machine, network_model="warp").write(make_rank_data(2))
