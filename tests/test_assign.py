"""Tests for write/read aggregator assignment."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.assign import assign_read_aggregators, assign_write_aggregators


class TestWriteAggregators:
    def test_empty(self):
        assert len(assign_write_aggregators(0, 16)) == 0

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            assign_write_aggregators(4, 0)

    def test_fewer_leaves_than_ranks_distinct(self):
        a = assign_write_aggregators(8, 64)
        assert len(set(a.tolist())) == 8

    def test_spread_through_rank_space(self):
        a = assign_write_aggregators(4, 64)
        np.testing.assert_array_equal(a, [0, 16, 32, 48])

    def test_adjacent_leaves_far_apart(self):
        """The anti-oversubscription property: consecutive (spatially
        adjacent) leaves land on well-separated ranks."""
        a = assign_write_aggregators(16, 1024)
        gaps = np.diff(a)
        assert (gaps == 64).all()

    def test_more_leaves_than_ranks_wraps(self):
        a = assign_write_aggregators(10, 4)
        assert a.max() < 4
        counts = np.bincount(a, minlength=4)
        assert counts.max() - counts.min() <= 1

    @given(st.integers(1, 500), st.integers(1, 500))
    def test_valid_ranks_and_balance(self, n_leaves, nranks):
        a = assign_write_aggregators(n_leaves, nranks)
        assert len(a) == n_leaves
        assert (a >= 0).all() and (a < nranks).all()
        counts = np.bincount(a, minlength=nranks)
        assert counts.max() <= int(np.ceil(n_leaves / nranks)) + 1


class TestReadAggregators:
    def test_empty(self):
        assert len(assign_read_aggregators(0, 8)) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            assign_read_aggregators(4, -1)

    def test_more_ranks_than_files(self):
        a = assign_read_aggregators(4, 64)
        assert len(set(a.tolist())) == 4  # one rank per file
        np.testing.assert_array_equal(a, [0, 16, 32, 48])

    def test_fewer_ranks_than_files_even_deal(self):
        a = assign_read_aggregators(100, 8)
        counts = np.bincount(a, minlength=8)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == 100

    def test_equal_ranks_and_files(self):
        a = assign_read_aggregators(16, 16)
        assert sorted(a.tolist()) == list(range(16))

    def test_deterministic_without_communication(self):
        """All ranks must derive the same map locally."""
        a = assign_read_aggregators(37, 12)
        b = assign_read_aggregators(37, 12)
        np.testing.assert_array_equal(a, b)

    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_every_file_owned(self, n_files, nranks):
        a = assign_read_aggregators(n_files, nranks)
        assert len(a) == n_files
        assert (a >= 0).all() and (a < nranks).all()
