"""Tests for the sharded serve tier: consistent hashing, scatter-gather
byte-identity, crash containment, and the aggregated metrics surface.

The load-bearing invariant is byte-identity: whatever the ring dealt to
whichever worker process, the bytes a client receives from the sharded
router are exactly the bytes a single-process :class:`QueryService` (and
a direct synchronous query) returns for the same request sequence —
including boxes that span shard boundaries and progressive sessions
whose windows differ from request to request.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryRequest
from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.core.metadata import DatasetMetadata
from repro.machines import testing_machine
from repro.serve import (
    DegradationConfig,
    HashRing,
    QueryService,
    ServeConfig,
    ShardedQueryService,
    assign_leaves,
    region_key,
    request_from_doc,
    request_to_doc,
)
from repro.types import Box
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

BOX = Box((0.5, 0.5, 0.1), (3.0, 3.0, 0.8))
FILT = (AttributeFilter("mass", 0.2, 0.8),)


def serve_config(**kw):
    kw.setdefault("capacity", 2)
    kw.setdefault("degradation", DegradationConfig(enabled=False))
    return ServeConfig(**kw)


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=9, seed=21)
    out = tmp_path_factory.mktemp("shard")
    report = TwoPhaseWriter(testing_machine(), target_size=128 * 1024).write(
        data, out_dir=out, name="sh"
    )
    return report.metadata_path

@pytest.fixture(scope="module")
def direct(written):
    with BATDataset(written) as ds:
        yield ds


@pytest.fixture(scope="module")
def sharded(written):
    """One shared 2-shard service; spawning processes is the slow part."""
    svc = ShardedQueryService(written, serve_config(), n_shards=2)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def single(written):
    svc = QueryService(written, serve_config())
    yield svc
    svc.close()


def canon(batch):
    out = [None if batch.positions is None else batch.positions.tobytes()]
    for k, v in batch.attributes.items():
        out.append((k, str(v.dtype), v.tobytes()))
    return out


# ---------------------------------------------------------------------------
# consistent hashing


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"ds/0/({i}, 0.0, 0.0)/(1.0, 1.0, 1.0)" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_owners_in_range_and_all_used(self):
        ring = HashRing(3)
        owners = {ring.owner(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2}

    def test_roughly_balanced(self):
        ring = HashRing(4)
        counts = np.bincount(
            [ring.owner(f"leaf-{i}") for i in range(4000)], minlength=4
        )
        # consistent hashing with 64 virtual nodes: no shard starves
        assert counts.min() > 4000 / 4 * 0.5

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.owner(f"k{i}") for i in range(50)} == {0}

    def test_stability_under_shard_growth(self):
        # the consistent-hashing property: adding a shard moves only a
        # fraction of the keys, it does not reshuffle the world
        small, large = HashRing(4), HashRing(5)
        keys = [f"leaf-{i}" for i in range(2000)]
        moved = sum(small.owner(k) != large.owner(k) for k in keys)
        assert moved < len(keys) * 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)

    def test_region_key_distinguishes_dataset_step_region(self):
        unit = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        k = region_key("ds", 0, unit)
        assert k != region_key("ds2", 0, unit)
        assert k != region_key("ds", 1, unit)
        assert k != region_key("ds", 0, Box((0.0, 0.0, 0.0), (2.0, 1.0, 1.0)))


class TestAssignment:
    def test_router_and_workers_agree(self, written, sharded):
        # the worker-side assignment is the same pure function of the
        # manifest; recompute it here and compare with the router's view
        meta = DatasetMetadata.load(written)
        owners = assign_leaves(meta, Path(written).name, 0, HashRing(2))
        assert owners == sharded.owners(0)
        assert len(owners) == len(meta.leaves)
        assert set(owners) <= {0, 1}

    def test_workers_report_complementary_ownership(self, sharded):
        # ownership materializes when a worker first opens the step
        sid = sharded.open_session()
        try:
            sharded.request(sid, QueryRequest(quality=1.0))
        finally:
            sharded.close_session(sid)
        snap = sharded.snapshot()
        owned = [w["owned_leaves"].get("0", 0) for w in snap["shards"]["workers"]]
        assert sum(owned) == len(sharded.owners(0))
        assert all(n > 0 for n in owned)  # 5 leaves over 2 shards: both hold some


# ---------------------------------------------------------------------------
# request wire form


class TestRequestDoc:
    @pytest.mark.parametrize(
        "req",
        [
            QueryRequest(quality=1.0),
            QueryRequest(quality=0.4, box=BOX, filters=FILT, prev_quality=0.1),
            QueryRequest(quality=0.7, columns=("mass",), engine="bitmap"),
            QueryRequest(quality=0.2, on_error="degrade"),
        ],
    )
    def test_round_trip(self, req):
        doc = request_to_doc(req)
        json.dumps(doc, allow_nan=False)  # strictly JSON (job store rows)
        assert request_from_doc(doc) == req

    def test_doc_is_plain_python(self):
        doc = request_to_doc(QueryRequest(quality=np.float64(0.5), box=BOX))
        assert type(doc["quality"]) is float
        assert all(type(v) is float for pt in doc["box"] for v in pt)


class TestNeighborRejection:
    """Neighbor lists cross shard ownership; the router refuses them."""

    REQ_KW = dict(points=((1.0, 1.0, 0.5),), k=4)

    def test_submit_rejected(self, sharded):
        from repro import NeighborRequest
        from repro.errors import InvalidRequestError

        sid = sharded.open_session()
        try:
            with pytest.raises(InvalidRequestError, match="sharded tier"):
                sharded.submit(sid, NeighborRequest(**self.REQ_KW))
        finally:
            sharded.close_session(sid)

    def test_execute_rejected(self, sharded):
        from repro import NeighborRequest
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError, match="sharded tier"):
            sharded.execute(NeighborRequest(**self.REQ_KW))


# ---------------------------------------------------------------------------
# scatter-gather byte-identity


class TestShardedIdentity:
    def test_one_shot_matches_single_process(self, sharded, single):
        reqs = [
            QueryRequest(quality=0.3, box=BOX, filters=FILT),
            QueryRequest(quality=1.0),                      # spans every shard
            QueryRequest(quality=0.5, box=BOX),
            QueryRequest(quality=1.0, box=Box((0, 0, 0), (9, 9, 9))),
        ]
        for req in reqs:
            s1, s2 = single.open_session(), sharded.open_session()
            try:
                a = single.request(s1, req)
                b = sharded.request(s2, req)
            finally:
                single.close_session(s1)
                sharded.close_session(s2)
            assert canon(a.batch) == canon(b.batch)
            assert (a.served_quality, a.prev_quality) == (
                b.served_quality, b.prev_quality
            )
            assert not b.partial

    def test_progressive_session_matches(self, sharded, single):
        s1, s2 = single.open_session(), sharded.open_session()
        try:
            for q in (0.2, 0.55, 0.55, 1.0):
                a = single.request(s1, QueryRequest(quality=q, box=BOX, filters=FILT))
                b = sharded.request(s2, QueryRequest(quality=q, box=BOX, filters=FILT))
                assert canon(a.batch) == canon(b.batch), q
                assert a.prev_quality == b.prev_quality
            # view change resets delivered quality on both sides alike
            a = single.request(s1, QueryRequest(quality=0.4))
            b = sharded.request(s2, QueryRequest(quality=0.4))
            assert canon(a.batch) == canon(b.batch)
            assert a.prev_quality == b.prev_quality == 0.0
        finally:
            single.close_session(s1)
            sharded.close_session(s2)

    def test_empty_region_schema_stable(self, sharded, single):
        req = QueryRequest(quality=1.0, box=Box((8.5, 8.5, 8.5), (8.9, 8.9, 8.9)))
        s1, s2 = single.open_session(), sharded.open_session()
        try:
            a = single.request(s1, req)
            b = sharded.request(s2, req)
        finally:
            single.close_session(s1)
            sharded.close_session(s2)
        assert len(b.batch) == 0
        assert set(a.batch.attributes) == set(b.batch.attributes)
        assert canon(a.batch) == canon(b.batch)

    @SETTINGS
    @given(
        lo=st.tuples(*[st.floats(0.0, 6.0) for _ in range(3)]),
        span=st.tuples(*[st.floats(0.3, 4.0) for _ in range(3)]),
        quality=st.sampled_from([0.25, 0.5, 0.8, 1.0]),
        use_filter=st.booleans(),
    )
    def test_random_boxes_byte_identical(
        self, sharded, direct, lo, span, quality, use_filter
    ):
        box = Box(lo, tuple(v + s for v, s in zip(lo, span)))
        req = QueryRequest(
            quality=quality, box=box, filters=FILT if use_filter else ()
        )
        expected, _ = direct.query(req)
        sid = sharded.open_session()
        try:
            got = sharded.request(sid, req)
        finally:
            sharded.close_session(sid)
        assert canon(got.batch) == canon(expected)

    def test_cross_shard_boxes_actually_fan_out(self, sharded):
        before = sharded.fanout_multi
        sid = sharded.open_session()
        try:
            # a box no other test uses, so the result cache cannot absorb it
            sharded.request(
                sid, QueryRequest(quality=1.0, box=Box((0, 0, 0), (8.7, 8.7, 8.7)))
            )
        finally:
            sharded.close_session(sid)
        assert sharded.fanout_multi > before

    def test_three_shards_full_quality(self, written, direct):
        with ShardedQueryService(written, serve_config(), n_shards=3) as svc:
            assert set(svc.owners(0)) <= {0, 1, 2}
            sid = svc.open_session()
            try:
                got = svc.request(sid, QueryRequest(quality=1.0, box=BOX))
            finally:
                svc.close_session(sid)
            expected, _ = direct.query(QueryRequest(quality=1.0, box=BOX))
            assert canon(got.batch) == canon(expected)


# ---------------------------------------------------------------------------
# stateless batch path and the shared admission budget


class TestBatchExecute:
    def test_execute_matches_direct(self, sharded, direct):
        req = QueryRequest(quality=0.6, box=BOX, filters=FILT)
        resp = sharded.execute(req)
        expected, _ = direct.query(req)
        assert canon(resp.batch) == canon(expected)
        assert not resp.degraded  # batch path never degrades

    def test_execute_window(self, sharded, direct):
        full, _ = direct.query(QueryRequest(quality=0.8, box=BOX))
        low, _ = direct.query(QueryRequest(quality=0.3, box=BOX))
        window = sharded.execute(
            QueryRequest(quality=0.8, prev_quality=0.3, box=BOX)
        )
        assert len(window.batch) == len(full) - len(low)

    def test_batch_gate_bounded_by_share(self, written):
        svc = ShardedQueryService(
            written, serve_config(capacity=4), n_shards=2, batch_share=0.5
        )
        try:
            gate = svc._batch_gate
            assert gate._initial_value == 2  # capacity 4 * share 0.5
        finally:
            svc.close()

    def test_type_errors(self, sharded):
        with pytest.raises(TypeError):
            sharded.execute({"quality": 1.0})
        sid = sharded.open_session()
        try:
            with pytest.raises(TypeError):
                sharded.submit(sid, "not a request")
        finally:
            sharded.close_session(sid)


# ---------------------------------------------------------------------------
# metrics surface


class TestShardSnapshot:
    def test_aggregated_snapshot_strict_json(self, sharded):
        sid = sharded.open_session()
        try:
            sharded.request(sid, QueryRequest(quality=0.4, box=BOX, filters=FILT))
        finally:
            sharded.close_session(sid)
        snap = sharded.snapshot()
        json.dumps(snap, allow_nan=False)  # strict: no numpy, NaN, tuples
        shards = snap["shards"]
        assert shards["count"] == 2
        assert len(shards["workers"]) == 2
        assert shards["fanout_single"] + shards["fanout_multi"] >= 1
        for w in shards["workers"]:
            assert "requests" in w and "caches" in w
            assert w["caches"]["files"]["open"] >= 0

    def test_worker_snapshots_sum_to_scattered_requests(self, written):
        with ShardedQueryService(written, serve_config(), n_shards=2) as svc:
            sid = svc.open_session()
            try:
                for q in (0.3, 1.0):
                    svc.request(sid, QueryRequest(quality=q, box=BOX))
            finally:
                svc.close_session(sid)
            snap = svc.snapshot()
            shard_completed = sum(
                w["requests"]["completed"] for w in snap["shards"]["workers"]
            )
            # every scattered window becomes exactly one request per
            # contacted shard, which is what the fanout counter records
            assert shard_completed == svc.fanout_shards
            assert snap["requests"]["completed"] == 2


# ---------------------------------------------------------------------------
# crash containment


class TestCrashRecovery:
    def test_killed_worker_respawns_and_answers_identically(
        self, written, direct
    ):
        with ShardedQueryService(written, serve_config(), n_shards=2) as svc:
            req = QueryRequest(quality=1.0, box=BOX, filters=FILT)
            sid = svc.open_session()
            try:
                first = svc.request(sid, req)
                svc._shards[0].process.kill()
                svc._shards[0].process.join(5.0)
                # view change so the second request decodes, not cache-hits
                again = svc.request(
                    sid, QueryRequest(quality=1.0, box=BOX)
                )
                expected, _ = direct.query(QueryRequest(quality=1.0, box=BOX))
            finally:
                svc.close_session(sid)
            assert canon(again.batch) == canon(expected)
            assert len(first.batch) > 0
            assert sum(c.restarts for c in svc._shards) == 1
            assert svc.snapshot()["shards"]["restarts"] == 1

    def test_restart_counter_in_snapshot_before_any_crash(self, sharded):
        # the module-wide fixture is shared; restarts only ever grows
        assert sharded.snapshot(include_workers=False)["shards"]["restarts"] >= 0


# ---------------------------------------------------------------------------
# loadgen duck-compatibility


class TestLoadgenCompat:
    def test_run_load_verifies_identity_against_direct(self, written, direct):
        from repro.serve import make_traces, run_load, verify_identity_samples

        with ShardedQueryService(written, serve_config(capacity=4), n_shards=2) as svc:
            traces = make_traces(
                n_sessions=6, ops_per_session=3, bounds=svc.bounds, seed=5
            )
            report = run_load(svc, traces, concurrency=3, identity_sample_every=2)
            assert report.requests == 18
            assert report.identity_samples
            verify_identity_samples(direct, report.identity_samples)
