"""Tests for the unified query API: open_dataset / QueryRequest / QueryResult.

Covers the public-surface contract (every ``repro.__all__`` name imports
and is documented), the deprecation shims (old keyword/positional query
forms warn exactly once per form and return byte-identical results), and
request validation.
"""

import warnings

import pytest

import repro
from repro import QueryRequest, QueryResult, open_dataset
from repro.api import _reset_deprecation_warnings
from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.errors import InvalidRequestError, ReproError
from repro.machines import testing_machine as make_test_machine
from repro.serve import QueryService, ServeConfig
from repro.types import Box
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    data = make_rank_data(nranks=16, seed=11)
    out = tmp_path_factory.mktemp("api-ds")
    writer = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024)
    report = writer.write(data, out_dir=out, name="vis")
    with open_dataset(report.metadata_path) as ds:
        yield ds


@pytest.fixture(autouse=True)
def _fresh_warnings():
    _reset_deprecation_warnings()
    yield
    _reset_deprecation_warnings()


# -- public surface ---------------------------------------------------------


def test_all_names_importable_and_documented():
    for name in repro.__all__:
        obj = getattr(repro, name)
        assert obj is not None, name
        doc = getattr(obj, "__doc__", None)
        assert doc and doc.strip(), f"repro.{name} has no docstring"


def test_error_hierarchy_exported():
    from repro.errors import (
        AdmissionRejected,
        CodecError,
        IntegrityError,
        LeafUnavailableError,
        PublishError,
    )

    for exc in (
        IntegrityError,
        LeafUnavailableError,
        PublishError,
        AdmissionRejected,
        CodecError,
        InvalidRequestError,
    ):
        assert issubclass(exc, ReproError)


# -- QueryRequest validation ------------------------------------------------


def test_request_validates_quality():
    with pytest.raises(InvalidRequestError):
        QueryRequest(quality=-0.1)
    with pytest.raises(InvalidRequestError):
        QueryRequest(quality=1.5)
    with pytest.raises(InvalidRequestError):
        QueryRequest(quality=0.5, prev_quality=0.6)
    QueryRequest(quality=0.0)  # empty read: valid, progressive loops start here


def test_request_validates_on_error():
    with pytest.raises(InvalidRequestError, match="on_error"):
        QueryRequest(on_error="explode")
    # InvalidRequestError stays catchable as ValueError for old callers
    with pytest.raises(ValueError):
        QueryRequest(on_error="explode")


def test_request_is_hashable_and_normalizes_sequences():
    req = QueryRequest(filters=[AttributeFilter("temp", 0.0, 1.0)], columns=["temp"])
    assert isinstance(req.filters, tuple)
    assert req.columns == ("temp",)
    assert hash(req) == hash(
        QueryRequest(filters=(AttributeFilter("temp", 0.0, 1.0),), columns=("temp",))
    )


def test_result_unpacks_like_a_tuple(dataset):
    res = dataset.query(QueryRequest(quality=0.5))
    assert isinstance(res, QueryResult)
    batch, stats = res
    assert batch is res.batch and stats is res.stats
    assert len(res) == len(batch)


# -- deprecation shims ------------------------------------------------------


def test_legacy_kwargs_warn_once_and_match(dataset):
    box = Box((0.0, 0.0, 0.0), (2.0, 2.0, 1.0))
    with pytest.warns(DeprecationWarning, match="QueryRequest"):
        old_batch, old_stats = dataset.query(quality=0.5, box=box)
    # same form again: silent
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        old2, _ = dataset.query(quality=0.5, box=box)
    new = dataset.query(QueryRequest(quality=0.5, box=box))
    assert old_batch.positions.tobytes() == new.batch.positions.tobytes()
    assert old2.positions.tobytes() == new.batch.positions.tobytes()
    for name in new.batch.attributes:
        assert old_batch.attributes[name].tobytes() == new.batch.attributes[name].tobytes()
    assert old_stats.points_returned == new.stats.points_returned


def test_legacy_positional_quality_warns_and_matches(dataset):
    with pytest.warns(DeprecationWarning):
        old_batch, _ = dataset.query(0.5)
    new = dataset.query(QueryRequest(quality=0.5))
    assert old_batch.positions.tobytes() == new.batch.positions.tobytes()


def test_legacy_attributes_kwarg_maps_to_columns(dataset):
    with pytest.warns(DeprecationWarning):
        old_batch, _ = dataset.query(attributes=["temp"])
    new = dataset.query(QueryRequest(columns=("temp",)))
    assert set(old_batch.attributes) == set(new.batch.attributes) == {"temp"}
    assert old_batch.attributes["temp"].tobytes() == new.batch.attributes["temp"].tobytes()


def test_distinct_legacy_forms_each_warn(dataset):
    with pytest.warns(DeprecationWarning):
        dataset.query(quality=0.5)
    with pytest.warns(DeprecationWarning):
        dataset.query(quality=0.5, filters=(AttributeFilter("temp", 0.0, 0.5),))


def test_unknown_legacy_kwarg_rejected(dataset):
    with pytest.raises(TypeError):
        dataset.query(qualtiy=0.5)  # typo must not be silently dropped


def test_bare_query_still_works_without_warning(dataset):
    """`batch, stats = ds.query()` (no legacy kwargs) is the new form."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        batch, stats = dataset.query()
    assert len(batch) == dataset.total_particles
    assert stats.points_returned == len(batch)


def test_columns_selection_roundtrip(dataset):
    res = dataset.query(QueryRequest(columns=("mass",)))
    assert set(res.batch.attributes) == {"mass"}
    full = dataset.query(QueryRequest())
    assert res.batch.attributes["mass"].tobytes() == full.batch.attributes["mass"].tobytes()


# -- serve-layer shims ------------------------------------------------------


def test_serve_legacy_request_warns_once_and_matches(dataset):
    svc = QueryService(dataset.metadata_path, ServeConfig(capacity=1))
    try:
        sid = svc.open_session()
        with pytest.warns(DeprecationWarning, match="QueryRequest"):
            legacy = svc.request(sid, quality=0.4)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            svc.request(sid, quality=0.4)
        sid2 = svc.open_session()
        new = svc.request(sid2, QueryRequest(quality=0.4))
        assert legacy.batch.positions.tobytes() == new.batch.positions.tobytes()
    finally:
        svc.close()


def test_serve_rejects_mixed_request_and_legacy_kwargs(dataset):
    svc = QueryService(dataset.metadata_path, ServeConfig(capacity=1))
    try:
        sid = svc.open_session()
        with pytest.raises(TypeError):
            svc.request(sid, QueryRequest(quality=0.5), quality=0.5)
    finally:
        svc.close()


# -- open_dataset -----------------------------------------------------------


def test_open_dataset_context_manager(tmp_path):
    data = make_rank_data(nranks=4, seed=3)
    writer = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024)
    report = writer.write(data, out_dir=tmp_path, name="vis")
    with open_dataset(report.metadata_path) as ds:
        res = ds.query(QueryRequest())
        assert len(res) == ds.total_particles
