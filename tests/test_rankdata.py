"""Tests for the RankData container."""

import numpy as np
import pytest

from repro.core import RankData
from repro.types import ParticleBatch


def batches_of(counts, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for c in counts:
        out.append(ParticleBatch(rng.random((c, 3)), {"a": rng.random(c)}))
    return out


class TestRankData:
    def test_timing_only(self):
        rd = RankData(bounds=np.zeros((4, 2, 3)), counts=[10, 20, 0, 5], bytes_per_particle=64.0)
        assert rd.nranks == 4
        assert rd.total_particles == 35
        assert rd.total_bytes == 35 * 64.0
        assert not rd.materialized
        assert rd.attribute_specs() == []

    def test_requires_bpp_without_batches(self):
        with pytest.raises(ValueError, match="bytes_per_particle"):
            RankData(bounds=np.zeros((2, 2, 3)), counts=[1, 2])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            RankData(bounds=np.zeros((3, 2, 3)), counts=[1, 2], bytes_per_particle=1.0)

    def test_batches_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            RankData(
                bounds=np.zeros((2, 2, 3)), counts=[5, 5], batches=batches_of([5])
            )

    def test_count_consistency_enforced(self):
        with pytest.raises(ValueError, match="count says"):
            RankData(
                bounds=np.zeros((2, 2, 3)), counts=[5, 7], batches=batches_of([5, 6])
            )

    def test_bpp_derived_from_batches(self):
        rd = RankData(
            bounds=np.zeros((2, 2, 3)), counts=[5, 10], batches=batches_of([5, 10])
        )
        assert rd.materialized
        assert rd.bytes_per_particle == pytest.approx(12 + 8)  # 3 f32 + 1 f64

    def test_attribute_specs_from_first_nonempty(self):
        b = batches_of([0, 7])
        rd = RankData(bounds=np.zeros((2, 2, 3)), counts=[0, 7], batches=b)
        specs = rd.attribute_specs()
        assert [s.name for s in specs] == ["a"]

    def test_from_batches(self):
        b = batches_of([5, 0, 12])
        rd = RankData.from_batches(b)
        assert rd.nranks == 3
        np.testing.assert_array_equal(rd.counts, [5, 0, 12])
        # nonempty ranks get tight data bounds
        assert (rd.bounds[0, 1] >= rd.bounds[0, 0]).all()
