"""Tests for the simulation + I/O driver (checkpoint/restart loop)."""

import numpy as np
import pytest

from repro.driver import IODriver, restart_latest
from repro.machines import testing_machine as make_test_machine
from repro.workloads import InjectionSim, ShallowWaterSim


class TestIODriver:
    def test_validation(self, tmp_path):
        m = make_test_machine()
        with pytest.raises(ValueError):
            IODriver(m, tmp_path, nranks=8, io_every=0)
        with pytest.raises(ValueError):
            IODriver(m, tmp_path, nranks=0)
        drv = IODriver(m, tmp_path, nranks=8)
        with pytest.raises(ValueError):
            drv.run(ShallowWaterSim(n_particles=10), -1)

    def test_cadence(self, tmp_path):
        sim = ShallowWaterSim(n_particles=1500)
        drv = IODriver(make_test_machine(), tmp_path, nranks=4, io_every=25,
                       target_size=128 * 1024)
        log = drv.run(sim, 100)
        assert log.steps_written == [0, 25, 50, 75, 100]
        assert len(log.write_seconds) == 5
        assert log.total_io_seconds > 0

    def test_final_step_always_written(self, tmp_path):
        sim = ShallowWaterSim(n_particles=1000)
        drv = IODriver(make_test_machine(), tmp_path, nranks=4, io_every=30,
                       target_size=128 * 1024)
        log = drv.run(sim, 70)  # 70 is off-cadence
        assert log.steps_written == [0, 30, 60, 70]

    def test_no_initial_write(self, tmp_path):
        sim = ShallowWaterSim(n_particles=1000)
        drv = IODriver(make_test_machine(), tmp_path, nranks=4, io_every=10,
                       target_size=128 * 1024)
        log = drv.run(sim, 20, write_initial=False)
        assert log.steps_written == [10, 20]

    def test_growing_population_recorded(self, tmp_path):
        sim = InjectionSim(injection_rate=100)
        drv = IODriver(make_test_machine(), tmp_path, nranks=4, io_every=20,
                       target_size=128 * 1024)
        log = drv.run(sim, 60, write_initial=False)
        assert log.particles_written == [2000, 4000, 6000]


class TestRestart:
    def test_restart_latest_continues_trajectory(self, tmp_path):
        m = make_test_machine()
        sim = ShallowWaterSim(n_particles=2500)
        drv = IODriver(m, tmp_path, nranks=6, io_every=20, target_size=128 * 1024)
        drv.run(sim, 60)

        fresh = ShallowWaterSim(n_particles=2500)
        step = restart_latest(fresh, tmp_path)
        assert step == 60
        assert fresh.n_particles == 2500
        # the restarted run tracks the original within checkpoint precision
        sim.step(40)
        fresh.step(40)
        assert abs(sim.front_position() - fresh.front_position()) < 1e-3

    def test_restart_injection_sim(self, tmp_path):
        m = make_test_machine()
        sim = InjectionSim(injection_rate=80, seed=9)
        drv = IODriver(m, tmp_path, nranks=4, io_every=15, target_size=128 * 1024)
        drv.run(sim, 45, write_initial=False)

        fresh = InjectionSim(injection_rate=80, seed=9)
        step = restart_latest(fresh, tmp_path)
        assert step == 45
        assert fresh.n_particles == sim.n_particles
        np.testing.assert_allclose(
            np.sort(fresh.age), np.sort(sim.age), atol=1e-6
        )

    def test_restart_empty_dir(self, tmp_path):
        drv = IODriver(make_test_machine(), tmp_path, nranks=2)
        with pytest.raises(ValueError, match="no checkpoints"):
            restart_latest(ShallowWaterSim(n_particles=10), tmp_path)

    def test_resumed_run_extends_series(self, tmp_path):
        """Kill-and-resume: a second driver continues the same catalog."""
        m = make_test_machine()
        sim = ShallowWaterSim(n_particles=1200)
        drv = IODriver(m, tmp_path, nranks=4, io_every=20, target_size=128 * 1024)
        drv.run(sim, 40)

        # "crash"; new process restores and continues
        sim2 = ShallowWaterSim(n_particles=1200)
        restart_latest(sim2, tmp_path)
        drv2 = IODriver(m, tmp_path, nranks=4, io_every=20, target_size=128 * 1024)
        drv2.run(sim2, 40, write_initial=False)

        from repro.core.timeseries import TimeSeriesDataset

        with TimeSeriesDataset(tmp_path) as ts:
            assert ts.steps == [0, 20, 40, 60, 80]
