"""Tests for decompositions and the synthetic evaluation workloads."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import Box
from repro.workloads import CoalBoiler, DamBreak, grid_decompose, grid_dims, uniform_rank_data
from repro.workloads.decomposition import rank_cell_index
from repro.workloads.uniform import BYTES_PER_PARTICLE, PARTICLES_PER_RANK


class TestGridDims:
    def test_exact_product(self):
        for n in (1, 2, 6, 48, 96, 1536, 6144):
            assert int(np.prod(grid_dims(n, 3))) == n
            assert int(np.prod(grid_dims(n, 2))) == n

    def test_near_cubic(self):
        d = grid_dims(64, 3)
        assert sorted(d) == [4, 4, 4]

    def test_follows_extents(self):
        d = grid_dims(16, 3, extents=(8.0, 1.0, 1.0))
        assert d[0] == max(d)

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_dims(0)
        with pytest.raises(ValueError):
            grid_dims(4, 0)

    @given(st.integers(1, 2000))
    def test_product_always_exact(self, n):
        assert int(np.prod(grid_dims(n, 3))) == n


class TestGridDecompose:
    def test_tiles_domain(self):
        domain = Box((0, 0, 0), (4, 2, 1))
        b = grid_decompose(domain, 8, ndims=3)
        assert b.shape == (8, 2, 3)
        # cells tile: total volume preserved
        vols = np.prod(b[:, 1] - b[:, 0], axis=1)
        assert vols.sum() == pytest.approx(8.0)
        assert (b[:, 0] >= np.asarray(domain.lower) - 1e-12).all()
        assert (b[:, 1] <= np.asarray(domain.upper) + 1e-12).all()

    def test_2d_spans_full_z(self):
        domain = Box((0, 0, 0), (4, 1, 1))
        b = grid_decompose(domain, 8, ndims=2)
        assert (b[:, 0, 2] == 0.0).all()
        assert (b[:, 1, 2] == 1.0).all()

    def test_empty_domain(self):
        with pytest.raises(ValueError):
            grid_decompose(Box.empty(), 4)

    def test_cell_index_consistent_with_bounds(self):
        domain = Box((0, 0, 0), (4, 2, 1))
        nranks = 16
        b = grid_decompose(domain, nranks, ndims=3)
        dims = grid_dims(nranks, 3, domain.extents)
        rng = np.random.default_rng(0)
        pts = np.asarray(domain.lower) + rng.random((500, 3)) * domain.extents
        cells = rank_cell_index(pts, domain, dims)
        for r in range(nranks):
            sel = pts[cells == r]
            box = Box.from_array(b[r])
            assert box.contains_points(sel).all()


class TestUniform:
    def test_paper_parameters(self):
        rd = uniform_rank_data(64)
        assert rd.total_particles == 64 * PARTICLES_PER_RANK
        assert rd.bytes_per_particle == BYTES_PER_PARTICLE
        # "4.06 MB per rank"
        assert rd.total_bytes / 64 == pytest.approx(4.06e6, rel=0.01)
        assert not rd.materialized

    def test_materialized(self):
        rd = uniform_rank_data(4, particles_per_rank=500, materialize=True)
        assert rd.materialized
        assert rd.total_particles == 2000
        for r in range(4):
            box = Box.from_array(rd.bounds[r])
            assert box.contains_points(rd.batches[r].positions).all()
        assert len(rd.batches[0].attributes) == 14

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_rank_data(0)


class TestCoalBoiler:
    def test_published_totals(self):
        cb = CoalBoiler()
        assert cb.total_particles(501) == 4_600_000
        assert cb.total_particles(4501) == 41_500_000
        mid = cb.total_particles(2501)
        assert 4_600_000 < mid < 41_500_000

    def test_timestep_validation(self):
        with pytest.raises(ValueError):
            CoalBoiler().total_particles(100)

    def test_growth_monotone(self):
        cb = CoalBoiler()
        totals = [cb.total_particles(t) for t in range(501, 4502, 500)]
        assert totals == sorted(totals)

    def test_sample_inside_domain(self):
        cb = CoalBoiler()
        b = cb.sample(2501, 5000)
        assert cb.domain.contains_points(b.positions).all()
        assert set(b.attributes) == {
            "temperature", "vel_u", "vel_v", "vel_w", "char_mass", "moisture", "diameter",
        }

    def test_deterministic(self):
        cb = CoalBoiler()
        a = cb.sample(1501, 1000)
        b = cb.sample(1501, 1000)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_distribution_rises_over_time(self):
        cb = CoalBoiler()
        early = cb.sample(601, 5000).positions[:, 2].mean()
        late = cb.sample(4501, 5000).positions[:, 2].mean()
        assert late > early

    def test_rank_data_counts(self):
        cb = CoalBoiler()
        rd = cb.rank_data(2501, 96, sample_size=50_000)
        assert rd.nranks == 96
        assert rd.total_particles == pytest.approx(cb.total_particles(2501), rel=0.01)
        assert rd.bytes_per_particle == 3 * 4 + 7 * 8  # 68 B, as in the paper

    def test_rank_data_nonuniform(self):
        cb = CoalBoiler()
        rd = cb.rank_data(501, 256, sample_size=50_000)
        nz = rd.counts[rd.counts > 0]
        assert len(nz) < 256  # early injection: most ranks empty
        assert nz.max() > 3 * nz.mean()  # clustered

    def test_materialized_scaled(self):
        cb = CoalBoiler()
        rd = cb.rank_data(501, 16, scale=1e-3, materialize=True)
        assert rd.materialized
        assert rd.total_particles == pytest.approx(4600, rel=0.05)
        for r in range(16):
            box = Box.from_array(rd.bounds[r])
            if len(rd.batches[r]):
                assert box.contains_points(rd.batches[r].positions).all()


class TestDamBreak:
    def test_height_profile_initial_column(self):
        db = DamBreak()
        x = np.linspace(0, 4, 100)
        h = db.height_profile(0, x)
        assert (h[x <= 1.0] == db.column_height).all()
        assert (h[x > 1.01] == 0.0).all()

    def test_mass_spreads_over_time(self):
        db = DamBreak()
        x = np.linspace(0, 4, 400)
        early = db.height_profile(200, x)
        late = db.height_profile(4001, x)
        # occupied length grows
        assert (late > 1e-3).sum() > (early > 1e-3).sum()

    def test_settles_to_uniform_layer(self):
        db = DamBreak()
        x = np.linspace(0.1, 3.9, 100)
        h = db.height_profile(100_000, x)
        expected = db.column_height * db.dam_x / 4.0
        np.testing.assert_allclose(h, expected, rtol=0.05)

    def test_sample_under_surface(self):
        db = DamBreak()
        b = db.sample(1001, 5000)
        assert db.domain.contains_points(b.positions).all()
        x = b.positions[:, 0].astype(np.float64)
        z = b.positions[:, 2].astype(np.float64)
        h = db.height_profile(1001, x)
        assert (z <= h + 1e-3).all()

    def test_fixed_particle_count(self):
        db = DamBreak(total=100_000)
        for ts in (0, 1001, 4001):
            rd = db.rank_data(ts, 64, sample_size=20_000)
            assert rd.total_particles == pytest.approx(100_000, rel=0.01)

    def test_imbalance_decreases_as_water_spreads(self):
        db = DamBreak()
        imb = []
        for ts in (0, 1001, 4001):
            rd = db.rank_data(ts, 96, sample_size=50_000)
            nz = rd.counts[rd.counts > 0]
            imb.append(rd.counts.max() / rd.counts.mean())
        assert imb[0] > imb[-1]

    def test_2d_decomposition(self):
        db = DamBreak()
        rd = db.rank_data(0, 32, sample_size=10_000)
        # every rank spans full z
        assert (rd.bounds[:, 0, 2] == 0.0).all()
        assert (rd.bounds[:, 1, 2] == db.domain.upper[2]).all()
        assert rd.bytes_per_particle == 3 * 4 + 4 * 8  # 44 B, as in the paper
