"""Tests for the pluggable layout registry and the flat reference layout."""

import numpy as np
import pytest

from repro.core import TwoPhaseReader, TwoPhaseWriter
from repro.layouts import LayoutSpec, available_layouts, get_layout, register_layout
from repro.layouts.flat import FlatFile, build_flat
from repro.machines import testing_machine as make_test_machine
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data


@pytest.fixture
def batch():
    rng = np.random.default_rng(55)
    return ParticleBatch(
        rng.random((5000, 3)).astype(np.float32),
        {"m": rng.random(5000), "v": rng.normal(0, 1, 5000)},
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert "bat" in available_layouts()
        assert "flat" in available_layouts()

    def test_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            get_layout("xyz")

    def test_custom_registration(self):
        spec = LayoutSpec(name="custom-test", build=build_flat, open=FlatFile, extension=".x")
        register_layout(spec)
        try:
            assert get_layout("custom-test") is spec
        finally:
            from repro.layouts import _REGISTRY

            _REGISTRY.pop("custom-test")


class TestFlatLayout:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_flat(ParticleBatch.empty())

    def test_roundtrip(self, batch, tmp_path):
        built = build_flat(batch)
        assert built.n_points == len(batch)
        assert built.overhead_bytes < 1024  # header + attr table only
        p = tmp_path / "x.flat"
        built.write(p)
        with FlatFile(p) as f:
            assert f.n_points == len(batch)
            full = f.query_box(None)
            np.testing.assert_array_equal(
                np.sort(full.positions[:, 0]), np.sort(batch.positions[:, 0])
            )
            np.testing.assert_array_equal(
                np.sort(full.attributes["m"]), np.sort(batch.attributes["m"])
            )

    def test_spatial_query_exact(self, batch, tmp_path):
        built = build_flat(batch)
        p = tmp_path / "s.flat"
        built.write(p)
        box = Box((0.2, 0.2, 0.2), (0.7, 0.6, 0.9))
        with FlatFile(p) as f:
            res = f.query_box(box)
            assert len(res) == box.contains_points(batch.positions).sum()

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.flat"
        p.write_bytes(b"JUNKJUNKJUNK" * 10)
        with pytest.raises(ValueError, match="magic"):
            FlatFile(p)

    def test_from_bytes(self, batch):
        built = build_flat(batch)
        f = FlatFile.from_bytes(built.data)
        assert f.n_points == len(batch)

    def test_summary_contract(self, batch):
        """The writer consumes these fields from any layout's build."""
        built = build_flat(batch)
        assert set(built.attr_ranges) == {"m", "v"}
        assert set(built.root_bitmaps) == {"m", "v"}
        assert built.nbytes == len(built.data)
        lo, hi = built.attr_ranges["m"]
        assert lo == pytest.approx(batch.attributes["m"].min())

    def test_morton_sorted_sampling_is_stratified(self, batch):
        built = build_flat(batch)
        f = FlatFile.from_bytes(built.data)
        sub = f.sample(0.05)
        assert 0 < len(sub) < len(batch) // 10
        ext = sub.positions.max(axis=0) - sub.positions.min(axis=0)
        assert (ext > 0.8).all()

    def test_sample_validation(self, batch):
        f = FlatFile.from_bytes(build_flat(batch).data)
        with pytest.raises(ValueError):
            f.sample(1.5)
        assert len(f.sample(0.0)) == 0
        assert len(f.sample(1.0)) == len(batch)


class TestPipelineWithFlatLayout:
    def test_write_and_restart_read(self, tmp_path):
        m = make_test_machine()
        data = make_rank_data(nranks=9, seed=66)
        writer = TwoPhaseWriter(m, target_size=128 * 1024, layout="flat")
        rep = writer.write(data, out_dir=tmp_path, name="flat0")
        assert rep.metadata.layout == "flat"
        assert all(l.file_name.endswith(".flat") for l in rep.metadata.leaves)

        reader = TwoPhaseReader(m)
        rrep = reader.read(rep.metadata, np.roll(data.bounds, -1, axis=0), data_dir=tmp_path)
        assert sum(len(b) for b in rrep.batches) == data.total_particles

    def test_metadata_roundtrip_keeps_layout(self, tmp_path):
        from repro.core import DatasetMetadata

        m = make_test_machine()
        data = make_rank_data(nranks=4, seed=67)
        rep = TwoPhaseWriter(m, target_size=256 * 1024, layout="flat").write(
            data, out_dir=tmp_path, name="f1"
        )
        meta = DatasetMetadata.load(rep.metadata_path)
        assert meta.layout == "flat"

    def test_bat_config_rejected_for_flat(self):
        from repro.bat import BATBuildConfig

        with pytest.raises(ValueError, match="bat_config"):
            TwoPhaseWriter(
                make_test_machine(), layout="flat", bat_config=BATBuildConfig()
            )

    def test_bat_dataset_rejects_flat(self, tmp_path):
        from repro.core.dataset import BATDataset

        m = make_test_machine()
        data = make_rank_data(nranks=4, seed=68)
        rep = TwoPhaseWriter(m, target_size=256 * 1024, layout="flat").write(
            data, out_dir=tmp_path, name="f2"
        )
        with pytest.raises(ValueError, match="layout"):
            BATDataset(rep.metadata_path)
