"""Tests for the concurrent query service (scheduler, degradation, caches).

The load-bearing properties:

- every served response is byte-identical to a direct
  :meth:`BATDataset.query` at the same effective ``(prev_quality,
  quality)`` coordinates, whatever the scheduler, the degradation
  policy, and the result cache did along the way;
- a degraded-then-refined session converges to exactly the data a
  never-degraded full-quality session receives;
- admission control bounds queue depth and rejects (never hangs) past
  the bounds.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine as make_test_machine
from repro.serve import (
    AdmissionRejected,
    DegradationConfig,
    DegradationPolicy,
    QueryService,
    RequestScheduler,
    ResultCache,
    SchedulerClosed,
    SchedulerConfig,
    ServeConfig,
    make_traces,
    percentile,
    result_key,
    run_load,
    verify_identity_samples,
)
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=9, seed=21)
    out = tmp_path_factory.mktemp("serve")
    report = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024).write(
        data, out_dir=out, name="serve"
    )
    return data, report.metadata_path


@pytest.fixture(scope="module")
def direct(written):
    """A plain dataset for reference queries, independent of the service."""
    _, meta = written
    with BATDataset(meta) as ds:
        yield ds


def canonical(batch):
    """Multiset key of a batch: rows sorted by every column."""
    cols = [batch.positions[:, i] for i in range(3)]
    cols += [batch.attributes[k] for k in sorted(batch.attributes)]
    order = np.lexsort(cols)
    return tuple(np.ascontiguousarray(c[order]).tobytes() for c in cols)


def batch_bytes(batch):
    return (batch.positions.tobytes(),) + tuple(
        batch.attributes[k].tobytes() for k in sorted(batch.attributes)
    )


# ---------------------------------------------------------------------------
# scheduler


class TestScheduler:
    def test_runs_and_returns(self):
        with RequestScheduler(SchedulerConfig(capacity=2)) as sched:
            tickets = [sched.submit(lambda t, i=i: i * i) for i in range(5)]
            assert [t.result(5.0) for t in tickets] == [0, 1, 4, 9, 16]
            assert sched.executed == 5

    def test_exception_propagates(self):
        with RequestScheduler(SchedulerConfig(capacity=1)) as sched:
            t = sched.submit(lambda t: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                t.result(5.0)

    def test_priority_order_under_contention(self):
        """Interactive tickets overtake queued bulk tickets."""
        release = threading.Event()
        order = []
        with RequestScheduler(SchedulerConfig(capacity=1, max_queued=16)) as sched:
            blocker = sched.submit(lambda t: release.wait(10.0))
            bulk = [
                sched.submit(lambda t, i=i: order.append(("bulk", i)), priority=1)
                for i in range(3)
            ]
            inter = [
                sched.submit(lambda t, i=i: order.append(("inter", i)), priority=0)
                for i in range(2)
            ]
            release.set()
            for t in bulk + inter + [blocker]:
                t.result(10.0)
        assert order == [("inter", 0), ("inter", 1), ("bulk", 0), ("bulk", 1), ("bulk", 2)]

    def test_fifo_within_priority(self):
        release = threading.Event()
        order = []
        with RequestScheduler(SchedulerConfig(capacity=1)) as sched:
            blocker = sched.submit(lambda t: release.wait(10.0))
            ts = [sched.submit(lambda t, i=i: order.append(i)) for i in range(4)]
            release.set()
            for t in ts + [blocker]:
                t.result(10.0)
        assert order == [0, 1, 2, 3]

    def test_global_queue_bound_rejects(self):
        release = threading.Event()
        started = threading.Event()

        def block(t):
            started.set()
            release.wait(10.0)

        with RequestScheduler(SchedulerConfig(capacity=1, max_queued=2)) as sched:
            blocker = sched.submit(block)
            assert started.wait(5.0)  # blocker off the queue, onto the worker
            sched.submit(lambda t: None)
            sched.submit(lambda t: None)
            with pytest.raises(AdmissionRejected, match="queue full"):
                sched.submit(lambda t: None)
            assert sched.rejected_queue_full == 1
            release.set()
            blocker.result(10.0)

    def test_per_session_bound_rejects(self):
        release = threading.Event()
        cfg = SchedulerConfig(capacity=1, max_queued=64, max_session_queue=2)
        with RequestScheduler(cfg) as sched:
            blocker = sched.submit(lambda t: release.wait(10.0), session_id=7)
            sched.submit(lambda t: None, session_id=7)
            with pytest.raises(AdmissionRejected, match="session 7"):
                sched.submit(lambda t: None, session_id=7)
            # other sessions are unaffected by session 7's bound
            other = sched.submit(lambda t: None, session_id=8)
            assert sched.rejected_session_full == 1
            release.set()
            other.result(10.0)
            blocker.result(10.0)

    def test_wait_time_recorded(self):
        release = threading.Event()
        with RequestScheduler(SchedulerConfig(capacity=1)) as sched:
            blocker = sched.submit(lambda t: release.wait(10.0))
            queued = sched.submit(lambda t: t.wait_seconds)
            time.sleep(0.02)
            release.set()
            waited = queued.result(10.0)
            blocker.result(10.0)
        assert waited >= 0.01

    def test_drain_and_load_factor(self):
        with RequestScheduler(SchedulerConfig(capacity=2)) as sched:
            for _ in range(6):
                sched.submit(lambda t: time.sleep(0.001))
            assert sched.drain(10.0)
            assert sched.load_factor() == 0.0
            assert sched.queue_depth == 0

    def test_close_rejects_new_work(self):
        sched = RequestScheduler(SchedulerConfig(capacity=1))
        sched.close()
        with pytest.raises(SchedulerClosed):
            sched.submit(lambda t: None)

    def test_close_drains_pending(self):
        """Graceful close executes already-admitted tickets."""
        sched = RequestScheduler(SchedulerConfig(capacity=1))
        done = []
        tickets = [sched.submit(lambda t, i=i: done.append(i)) for i in range(5)]
        sched.close(wait=True)
        assert sorted(done) == [0, 1, 2, 3, 4]
        assert all(t.done() for t in tickets)


# ---------------------------------------------------------------------------
# degradation policy


class TestDegradationPolicy:
    def test_no_load_no_ceiling(self):
        pol = DegradationPolicy()
        assert pol.observe(0.5) == 1.0
        eff, degraded = pol.apply(1.0)
        assert eff == 1.0 and not degraded

    def test_cap_ramps_with_load(self):
        pol = DegradationPolicy(DegradationConfig(engage_at=1.0, full_load=3.0, min_quality=0.25))
        caps = [pol.observe(load) for load in (1.5, 2.0, 3.0, 5.0)]
        assert caps == sorted(caps, reverse=True)
        assert caps[-1] == pytest.approx(0.25)
        assert pol.engagements == 1  # one transition, not one per sample

    def test_hysteresis_no_flapping(self):
        cfg = DegradationConfig(engage_at=1.0, full_load=3.0, release_at=0.5)
        pol = DegradationPolicy(cfg)
        pol.observe(2.0)
        assert pol.engaged
        # hovering between release and engage keeps the degraded cap
        cap_held = pol.observe(0.8)
        assert cap_held < 1.0 and pol.engaged
        assert pol.releases == 0
        # draining below the watermark restores full quality
        assert pol.observe(0.4) == 1.0
        assert not pol.engaged and pol.releases == 1

    def test_downgrade_counting(self):
        pol = DegradationPolicy(DegradationConfig(engage_at=1.0, full_load=2.0, min_quality=0.5))
        pol.observe(2.0)
        eff, degraded = pol.apply(1.0)
        assert degraded and eff == pytest.approx(0.5)
        eff, degraded = pol.apply(0.3)  # below the cap: untouched
        assert not degraded and eff == 0.3
        assert pol.downgrades == 1

    def test_disabled_policy_never_degrades(self):
        pol = DegradationPolicy(DegradationConfig(enabled=False))
        assert pol.observe(100.0) == 1.0
        eff, degraded = pol.apply(1.0)
        assert eff == 1.0 and not degraded

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DegradationConfig(min_quality=0.0)
        with pytest.raises(ValueError):
            DegradationConfig(release_at=2.0, engage_at=1.0)
        with pytest.raises(ValueError):
            DegradationConfig(engage_at=2.0, full_load=1.0)


# ---------------------------------------------------------------------------
# result cache


class TestResultCache:
    def _batch(self, n=3):
        rng = np.random.default_rng(n)
        return ParticleBatch(rng.random((n, 3)), {"m": rng.random(n)})

    def test_hit_returns_same_object(self):
        cache = ResultCache(capacity=4, ttl=None)
        key = result_key(0, None, (), 0.0, 1.0)
        b = self._batch()
        cache.put(key, b)
        assert cache.get(key) is b
        assert cache.stats()["hits"] == 1

    def test_prev_quality_in_key(self):
        k1 = result_key(0, None, (), 0.0, 0.7)
        k2 = result_key(0, None, (), 0.3, 0.7)
        assert k1 != k2

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2, ttl=None)
        ks = [result_key(0, None, (), 0.0, q) for q in (0.1, 0.2, 0.3)]
        for k in ks:
            cache.put(k, self._batch())
        assert cache.get(ks[0]) is None  # evicted
        assert cache.get(ks[1]) is not None
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_lru(self):
        cache = ResultCache(capacity=2, ttl=None)
        a, b, c = (result_key(0, None, (), 0.0, q) for q in (0.1, 0.2, 0.3))
        cache.put(a, self._batch())
        cache.put(b, self._batch())
        cache.get(a)  # refresh a so b is the LRU victim
        cache.put(c, self._batch())
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = ResultCache(capacity=4, ttl=10.0, clock=lambda: now[0])
        key = result_key(0, None, (), 0.0, 1.0)
        cache.put(key, self._batch())
        now[0] = 9.0
        assert cache.get(key) is not None
        now[0] = 20.1
        assert cache.get(key) is None
        s = cache.stats()
        assert s["expirations"] == 1 and s["entries"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0.0)


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 50) == 5.0

    def test_p50_p99(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == pytest.approx(50, abs=1)
        assert percentile(vals, 99) == pytest.approx(99, abs=1)
        assert percentile(vals, 100) == 100


# ---------------------------------------------------------------------------
# the service


def serve_config(**kw):
    kw.setdefault("capacity", 2)
    kw.setdefault("result_ttl", None)
    kw.setdefault("degradation", DegradationConfig(enabled=False))
    return ServeConfig(**kw)


class ScriptedPolicy(DegradationPolicy):
    """Degradation driven by the test, not by observed load."""

    def observe(self, load_factor):
        return self.cap

    def set_cap(self, cap):
        with self._lock:
            if cap < 1.0 and not self._engaged:
                self._engaged = True
                self.engagements += 1
            elif cap >= 1.0 and self._engaged:
                self._engaged = False
                self.releases += 1
            self._cap = cap


class TestQueryService:
    def test_progressive_increments_sum_to_total(self, written):
        data, meta = written
        with QueryService(meta, serve_config()) as svc:
            sid = svc.open_session()
            total = 0
            for q in (0.2, 0.5, 0.8, 1.0):
                resp = svc.request(sid, q)
                assert resp.served_quality == q
                total += len(resp)
            assert total == data.total_particles
            assert svc.session(sid).delivered_quality == 1.0

    def test_responses_byte_identical_to_direct(self, written, direct):
        """Acceptance: served bytes == direct dataset bytes, same coords."""
        _, meta = written
        box = Box((0.2, 0.2, 0.0), (2.2, 2.2, 1.0))
        filt = (AttributeFilter("mass", 0.2, 0.9),)
        with QueryService(meta, serve_config()) as svc:
            sid = svc.open_session()
            for q in (0.3, 0.6, 1.0):
                resp = svc.request(sid, q, box=box, filters=filt)
                ref, _ = direct.query(
                    quality=resp.served_quality,
                    prev_quality=resp.prev_quality,
                    box=box,
                    filters=filt,
                )
                assert batch_bytes(resp.batch) == batch_bytes(ref)

    def test_no_redundant_data_and_view_reset(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            sid = svc.open_session()
            first = svc.request(sid, 0.5)
            assert len(first) > 0
            again = svc.request(sid, 0.5)
            assert len(again) == 0 and again.served_quality == 0.5
            lower = svc.request(sid, 0.3)
            assert len(lower) == 0
            box = Box((0.0, 0.0, 0.0), (2.0, 2.0, 1.0))
            moved = svc.request(sid, 0.4, box=box)
            assert len(moved) > 0  # progression restarted for the new view
            assert box.contains_points(moved.batch.positions).all()

    def test_result_cache_shared_across_sessions(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            a = svc.open_session()
            b = svc.open_session()
            ra = [svc.request(a, q) for q in (0.4, 0.8)]
            rb = [svc.request(b, q) for q in (0.4, 0.8)]
            assert not any(r.cache_hit for r in ra)
            assert all(r.cache_hit for r in rb)
            for x, y in zip(ra, rb):
                assert batch_bytes(x.batch) == batch_bytes(y.batch)
            assert svc.results.stats()["hits"] == 2

    def test_plan_and_file_caches_shared(self, written):
        _, meta = written
        box = Box((0.1, 0.1, 0.1), (1.4, 1.4, 0.9))
        with QueryService(meta, serve_config()) as svc:
            sids = [svc.open_session() for _ in range(3)]
            # distinct qualities dodge the result cache, so each session
            # reaches the planner — which must serve one shared plan
            for sid, q in zip(sids, (0.4, 0.6, 0.9)):
                svc.request(sid, q, box=box)
            plans = svc.snapshot()["caches"]["plans"]
            assert plans["misses"] == 1
            assert plans["hits"] >= 2

    def test_degraded_response_flagged_and_exact(self, written, direct):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            svc.degradation = ScriptedPolicy()
            sid = svc.open_session()
            svc.degradation.set_cap(0.4)
            resp = svc.request(sid, 1.0)
            assert resp.degraded and resp.served_quality == pytest.approx(0.4)
            ref, _ = direct.query(quality=resp.served_quality)
            assert batch_bytes(resp.batch) == batch_bytes(ref)
            assert svc.session(sid).downgrades == 1

    def test_degradation_never_resends_below_delivered(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            svc.degradation = ScriptedPolicy()
            sid = svc.open_session()
            svc.request(sid, 0.6)
            svc.degradation.set_cap(0.3)  # cap below what was delivered
            resp = svc.request(sid, 1.0)
            assert len(resp) == 0
            assert resp.served_quality == 0.6  # nothing re-sent, nothing lost

    @SETTINGS
    @given(
        qs=st.lists(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False), min_size=1, max_size=5
        ),
        caps=st.lists(
            st.floats(min_value=0.1, max_value=1.0, allow_nan=False), min_size=1, max_size=5
        ),
        use_box=st.booleans(),
    )
    def test_degraded_then_refined_converges(self, written, direct, qs, caps, use_box):
        """Tentpole property: any degradation history, then a full-quality
        refinement, yields exactly the direct full-quality data set."""
        _, meta = written
        box = Box((0.15, 0.1, 0.0), (2.4, 2.5, 1.0)) if use_box else None
        with QueryService(meta, serve_config(capacity=1)) as svc:
            svc.degradation = ScriptedPolicy()
            sid = svc.open_session()
            increments = []
            for i, q in enumerate(qs):
                svc.degradation.set_cap(caps[i % len(caps)])
                resp = svc.request(sid, q, box=box)
                if len(resp):
                    increments.append(resp.batch)
            svc.degradation.set_cap(1.0)  # load drained: full quality again
            final = svc.request(sid, 1.0, box=box)
            if len(final):
                increments.append(final.batch)
            assert svc.session(sid).delivered_quality == 1.0
            combined = (
                ParticleBatch.concatenate(increments)
                if increments
                else ParticleBatch.empty()
            )
        ref, _ = direct.query(quality=1.0, box=box)
        assert canonical(combined) == canonical(ref)

    def test_concurrent_sessions_all_byte_identical(self, written, direct):
        """Many clients under real contention: every response must match a
        direct query at its served coordinates."""
        _, meta = written
        views = [
            (None, ()),
            (Box((0.0, 0.0, 0.0), (1.5, 3.0, 1.0)), ()),
            (Box((0.5, 0.5, 0.0), (2.5, 2.5, 1.0)), (AttributeFilter("mass", 0.1, 0.8),)),
            (None, (AttributeFilter("temp", 280.0, 320.0),)),
        ]
        records = []
        lock = threading.Lock()
        cfg = ServeConfig(
            capacity=2, result_ttl=None, degradation=DegradationConfig(full_load=4.0)
        )
        with QueryService(meta, cfg) as svc:

            def client(view_index):
                box, filters = views[view_index % len(views)]
                sid = svc.open_session()
                for q in (0.3, 0.7, 1.0):
                    try:
                        resp = svc.request(sid, q, box=box, filters=filters)
                    except AdmissionRejected:
                        continue
                    with lock:
                        records.append(
                            (box, filters, resp.prev_quality, resp.served_quality,
                             batch_bytes(resp.batch))
                        )
                svc.close_session(sid)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert records
        for box, filters, prev_q, served_q, got in records:
            if served_q <= prev_q:
                continue  # empty increments are trivially identical
            ref, _ = direct.query(
                quality=served_q, prev_quality=prev_q, box=box, filters=filters
            )
            assert got == batch_bytes(ref)

    def test_admission_rejection_recorded(self, written):
        _, meta = written
        cfg = serve_config(capacity=1, max_queued=0)
        with QueryService(meta, cfg) as svc:
            sid = svc.open_session()
            with pytest.raises(AdmissionRejected):
                svc.request(sid, 0.5)
            snap = svc.snapshot()
            assert snap["requests"]["rejected"] == 1
            assert snap["scheduler"]["rejected_queue_full"] == 1

    def test_degradation_engages_and_releases_under_load(self, written):
        """Blocker-gated backlog: degradation engages at >1x capacity and
        releases after the drain."""
        _, meta = written
        cfg = ServeConfig(
            capacity=2,
            degradation=DegradationConfig(engage_at=1.0, full_load=3.0, release_at=0.5),
            result_ttl=None,
        )
        with QueryService(meta, cfg) as svc:
            release = threading.Event()
            blockers = [
                svc.scheduler.submit(lambda t: release.wait(10.0), session_id=-1 - i)
                for i in range(2)
            ]
            sids = [svc.open_session() for _ in range(4)]
            tickets = [svc.submit(sid, 0.8) for sid in sids]
            release.set()
            responses = [t.result(10.0) for t in tickets]
            for b in blockers:
                b.result(10.0)
            assert any(r.degraded for r in responses)
            assert svc.degradation.engagements >= 1
            # drain, then a lone request runs at load 0.5 <= release_at
            svc.scheduler.drain(10.0)
            calm = svc.open_session()
            resp = svc.request(calm, 0.3)
            assert not resp.degraded
            assert svc.degradation.releases >= 1
            assert svc.degradation.cap == 1.0

    def test_metrics_surface_shape(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            sid = svc.open_session()
            svc.request(sid, 0.5)
            svc.request(sid, 1.0)
            snap = svc.snapshot()
        assert snap["requests"]["completed"] == 2
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"] > 0
        for phase in ("wait", "plan", "traverse", "gather"):
            assert phase in snap["phase_seconds"]
        assert snap["scheduler"]["capacity"] == 2
        assert set(snap["caches"]) == {"results", "collapse", "plans", "files", "decoded_columns"}
        assert snap["degradation"]["downgrades"] == 0

    def test_timeseries_source_shares_file_cache(self, tmp_path):
        from repro.core.timeseries import TimeSeriesWriter

        data0 = make_rank_data(nranks=4, seed=1)
        data1 = make_rank_data(nranks=4, seed=2)
        w = TimeSeriesWriter(make_test_machine(), tmp_path, target_size=128 * 1024)
        w.write_step(0, data0)
        w.write_step(5, data1)
        with QueryService(tmp_path, serve_config()) as svc:
            assert svc.steps == [0, 5]
            a = svc.open_session(step=0)
            b = svc.open_session(step=5)
            r0 = svc.request(a, 1.0)
            r1 = svc.request(b, 1.0)
            assert len(r0) == data0.total_particles
            assert len(r1) == data1.total_particles
            files = svc.snapshot()["caches"]["files"]
            assert files["open"] > 0  # both steps share one handle pool
            assert svc.dataset(0).file_cache is svc.dataset(5).file_cache

    def test_unknown_step_rejected(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            with pytest.raises(KeyError):
                svc.open_session(step=3)


# ---------------------------------------------------------------------------
# load generator


class TestLoadGenerator:
    def test_traces_deterministic(self, direct):
        t1 = make_traces(6, direct.bounds, direct.attr_ranges, seed=3)
        t2 = make_traces(6, direct.bounds, direct.attr_ranges, seed=3)
        assert t1 == t2
        assert len(t1) == 6
        kinds = {len(ops) for ops in t1}
        assert kinds  # every trace has operations

    def test_run_load_and_identity(self, written, direct):
        _, meta = written
        cfg = ServeConfig(capacity=2, degradation=DegradationConfig(), result_ttl=None)
        with QueryService(meta, cfg) as svc:
            traces = make_traces(6, direct.bounds, direct.attr_ranges,
                                 ops_per_session=4, seed=7)
            report = run_load(svc, traces, concurrency=4, identity_sample_every=3)
            assert report.requests == 6 * 4
            assert report.elapsed_seconds > 0
            assert len(report.latencies) + report.rejected == report.requests
            checked = verify_identity_samples(direct, report.identity_samples)
            assert checked == len(report.identity_samples) > 0
            # queue depth stayed within the admission bound
            assert svc.scheduler.max_queue_depth <= svc.config.max_queued

    def test_concurrency_validation(self, written):
        _, meta = written
        with QueryService(meta, serve_config()) as svc:
            with pytest.raises(ValueError):
                run_load(svc, [], concurrency=0)
