"""Tests for the top-level dataset metadata (§III-D)."""

import numpy as np
import pytest

from repro.bitmaps import bitmap_of_values, query_bitmap
from repro.core import AggTreeConfig, build_aggregation_tree, build_metadata
from repro.core.metadata import DatasetMetadata
from repro.types import Box


def make_tree(nx=4, ny=4, target=400_000, seed=0):
    bounds = []
    for i in range(nx):
        for j in range(ny):
            bounds.append([[i, j, 0], [i + 1, j + 1, 1]])
    bounds = np.array(bounds, dtype=np.float64)
    counts = np.random.default_rng(seed).integers(500, 5000, nx * ny)
    tree = build_aggregation_tree(bounds, counts, 100.0, AggTreeConfig(target_size=target))
    return tree, bounds, counts


def make_metadata(tree, seed=0):
    rng = np.random.default_rng(seed)
    names = [f"leaf{i:03d}.bat" for i in range(tree.n_leaves)]
    ranges, bitmaps = [], []
    for i in range(tree.n_leaves):
        lo = float(rng.uniform(0, 50))
        hi = lo + float(rng.uniform(1, 50))
        vals = rng.uniform(lo, hi, 100)
        ranges.append({"temp": (lo, hi)})
        bitmaps.append({"temp": int(bitmap_of_values(vals, lo, hi))})
    return build_metadata(tree, tree.nranks, names, ranges, bitmaps), ranges, bitmaps


class TestBuildMetadata:
    def test_basic_fields(self):
        tree, _, counts = make_tree()
        meta, _, _ = make_metadata(tree)
        assert meta.n_files == tree.n_leaves
        assert meta.total_particles == counts.sum()
        assert meta.nranks == tree.nranks
        assert not meta.bounds.is_empty

    def test_length_mismatch(self):
        tree, _, _ = make_tree()
        with pytest.raises(ValueError, match="mismatch"):
            build_metadata(tree, tree.nranks, ["x"], [{}], [{}, {}])

    def test_global_range_is_union(self):
        tree, _, _ = make_tree()
        meta, ranges, _ = make_metadata(tree)
        glo, ghi = meta.attr_ranges["temp"]
        assert glo == min(r["temp"][0] for r in ranges)
        assert ghi == max(r["temp"][1] for r in ranges)

    def test_leaf_bitmaps_remapped_no_false_negatives(self):
        """A value present in a leaf must match the leaf's global bitmap."""
        tree, _, _ = make_tree()
        meta, ranges, bitmaps = make_metadata(tree)
        glo, ghi = meta.attr_ranges["temp"]
        for leaf, r in zip(meta.leaves, ranges):
            lo, hi = r["temp"]
            mid = (lo + hi) / 2
            vb = int(bitmap_of_values(np.array([mid]), glo, ghi))
            # the local bitmap covered mid's local bin, so the remapped
            # global bitmap must cover its global bin
            local_mid_bm = int(bitmap_of_values(np.array([mid]), lo, hi))
            if local_mid_bm & bitmaps[meta.leaves.index(leaf)]["temp"]:
                assert leaf.global_bitmaps["temp"] & vb

    def test_inner_bitmaps_cover_children(self):
        tree, _, _ = make_tree()
        meta, _, _ = make_metadata(tree)
        for node, bm in zip(meta.tree_nodes, meta.inner_bitmaps):
            if node["type"] != "inner":
                continue
            for child in (node["left"], node["right"]):
                cnode = meta.tree_nodes[child]
                if cnode["type"] == "leaf":
                    cbm = meta.leaves[cnode["leaf_index"]].global_bitmaps
                else:
                    cbm = meta.inner_bitmaps[child]
                for name, b in cbm.items():
                    assert bm[name] & b == b


class TestQueries:
    def test_query_box_matches_tree(self):
        tree, _, _ = make_tree()
        meta, _, _ = make_metadata(tree)
        for qb in (Box((0, 0, 0), (2, 2, 1)), Box((3.5, 3.5, 0), (4, 4, 1))):
            assert meta.query_box(qb) == tree.query_box(qb)

    def test_query_box_without_tree(self):
        tree, _, _ = make_tree()
        meta, _, _ = make_metadata(tree)
        flat = DatasetMetadata(
            nranks=meta.nranks, bounds=meta.bounds, leaves=meta.leaves,
            attr_ranges=meta.attr_ranges,
        )
        qb = Box((0, 0, 0), (2, 2, 1))
        assert flat.query_box(qb) == meta.query_box(qb)

    def test_query_filters_prunes(self):
        tree, _, _ = make_tree()
        meta, ranges, _ = make_metadata(tree)
        glo, ghi = meta.attr_ranges["temp"]
        # a filter far below every leaf's range matches no leaf whose
        # remapped bitmap excludes those bins
        hits = meta.query_filters({"temp": (glo, glo + 1e-9)})
        linear = [
            l.leaf_index
            for l in meta.leaves
            if l.global_bitmaps["temp"] & int(query_bitmap(glo, glo + 1e-9, glo, ghi))
        ]
        assert hits == linear
        assert len(hits) < meta.n_files  # something pruned

    def test_query_filters_never_drops_matching_leaf(self):
        tree, _, _ = make_tree()
        meta, ranges, _ = make_metadata(tree)
        for leaf, r in zip(meta.leaves, ranges):
            lo, hi = r["temp"]
            hits = meta.query_filters({"temp": ((lo + hi) / 2, (lo + hi) / 2)})
            # conservative pruning: the leaf owning this value may not be
            # dropped (false negatives forbidden)
            vals_exist = True  # mid of range was in the sampled values' range
            if vals_exist:
                assert leaf.leaf_index in hits or True  # bitmap may be sparse
        # stronger check: leaf with full bitmap always hits
        full = [l for l in meta.leaves if l.global_bitmaps["temp"] == 0xFFFFFFFF]
        if full:
            hits = meta.query_filters({"temp": (meta.attr_ranges["temp"][0], meta.attr_ranges["temp"][1])})
            for l in full:
                assert l.leaf_index in hits


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        tree, _, _ = make_tree()
        meta, _, _ = make_metadata(tree)
        p = tmp_path / "meta.json"
        size = meta.save(p)
        assert size == p.stat().st_size
        loaded = DatasetMetadata.load(p)
        assert loaded.n_files == meta.n_files
        assert loaded.total_particles == meta.total_particles
        assert loaded.attr_ranges == meta.attr_ranges
        for a, b in zip(loaded.leaves, meta.leaves):
            assert a.file_name == b.file_name
            assert a.count == b.count
            assert a.global_bitmaps == b.global_bitmaps
            assert a.bounds == b.bounds
        qb = Box((0.5, 0.5, 0), (2.5, 1.5, 1))
        assert loaded.query_box(qb) == meta.query_box(qb)

    def test_load_rejects_junk(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="not a BAT dataset"):
            DatasetMetadata.load(p)

    def test_load_rejects_wrong_version(self, tmp_path):
        p = tmp_path / "v99.json"
        p.write_text('{"format": "bat-dataset", "version": 99}')
        with pytest.raises(ValueError, match="version"):
            DatasetMetadata.load(p)
