"""Tests for LOD presentation and the progressive streaming server."""

import pytest

from repro.bat import AttributeFilter
from repro.core import TwoPhaseWriter
from repro.machines import testing_machine as make_test_machine
from repro.types import Box
from repro.viz import ProgressiveStreamServer, lod_radius, quality_progression
from tests.test_pipeline import make_rank_data


@pytest.fixture(scope="module")
def written(tmp_path_factory):
    data = make_rank_data(nranks=9, seed=11)
    out = tmp_path_factory.mktemp("viz")
    report = TwoPhaseWriter(make_test_machine(), target_size=128 * 1024).write(
        data, out_dir=out, name="stream"
    )
    return data, report.metadata_path


class TestLODRadius:
    def test_full_fraction_identity(self):
        assert lod_radius(2.0, 1.0) == 2.0

    def test_volume_conservation(self):
        # an eighth of the particles -> double the radius
        assert lod_radius(1.0, 1 / 8) == pytest.approx(2.0)

    def test_monotone(self):
        rs = [lod_radius(1.0, f) for f in (0.1, 0.3, 0.7, 1.0)]
        assert rs == sorted(rs, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            lod_radius(1.0, 0.0)
        with pytest.raises(ValueError):
            lod_radius(0.0, 0.5)


class TestQualityProgression:
    def test_fig13_shape(self, written):
        from repro.core.dataset import BATDataset

        _, meta = written
        with BATDataset(meta) as ds:
            rows = quality_progression(ds, qualities=(0.2, 0.4, 0.8))
        pts = [r["points"] for r in rows]
        assert pts == sorted(pts)
        radii = [r["radius"] for r in rows]
        assert radii == sorted(radii, reverse=True)
        assert all(0 < r["fraction"] <= 1 for r in rows)


class TestStreamServer:
    def test_session_lifecycle(self, written):
        _, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            assert srv.n_sessions == 1
            srv.close_session(sid)
            assert srv.n_sessions == 0

    def test_progressive_increments_sum_to_total(self, written):
        data, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            total = 0
            for q in (0.2, 0.5, 0.8, 1.0):
                inc = srv.request(sid, q)
                total += len(inc)
            assert total == data.total_particles
            assert srv.session(sid).delivered_quality == 1.0
            assert srv.session(sid).bytes_sent > 0

    def test_no_redundant_data(self, written):
        _, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            first = srv.request(sid, 0.5)
            again = srv.request(sid, 0.5)
            assert len(first) > 0
            assert len(again) == 0

    def test_lower_quality_request_empty(self, written):
        _, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            srv.request(sid, 0.8)
            assert len(srv.request(sid, 0.3)) == 0

    def test_view_change_resets_progression(self, written):
        _, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            srv.request(sid, 1.0)
            box = Box((0.0, 0.0, 0.0), (2.0, 2.0, 1.0))
            inc = srv.request(sid, 0.5, box=box)
            assert len(inc) > 0  # re-streamed for the new view
            assert box.contains_points(inc.positions).all()

    def test_filtered_stream(self, written):
        data, meta = written
        with ProgressiveStreamServer(meta) as srv:
            sid = srv.open_session()
            f = AttributeFilter("mass", 0.5, 1.0)
            got = 0
            for q in (0.5, 1.0):
                inc = srv.request(sid, q, filters=[f])
                assert (inc.attributes["mass"] >= 0.5).all()
                got += len(inc)
            expected = sum(
                (b.attributes["mass"] >= 0.5).sum() for b in data.batches
            )
            assert got == expected

    def test_independent_sessions(self, written):
        _, meta = written
        with ProgressiveStreamServer(meta) as srv:
            a = srv.open_session()
            b = srv.open_session()
            srv.request(a, 1.0)
            inc_b = srv.request(b, 0.3)
            assert len(inc_b) > 0  # b's progression independent of a's
