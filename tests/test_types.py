"""Unit and property tests for repro.types (Box, ParticleBatch)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.types import AttributeSpec, Box, ParticleBatch

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


def pts_strategy(min_n=1, max_n=50):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(3)),
        elements=finite,
    )


class TestBox:
    def test_empty(self):
        b = Box.empty()
        assert b.is_empty
        assert not b.intersects(b)
        assert np.all(b.extents == 0)

    def test_of_points(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [0.5, 0.5, 0.5]])
        b = Box.of_points(pts)
        assert b.lower == (0, 0, 0)
        assert b.upper == (1, 2, 3)
        assert b.longest_axis() == 2

    def test_of_no_points(self):
        assert Box.of_points(np.empty((0, 3))).is_empty

    def test_union(self):
        a = Box((0, 0, 0), (1, 1, 1))
        b = Box((2, -1, 0.5), (3, 0.5, 2))
        u = a.union(b)
        assert u.lower == (0, -1, 0)
        assert u.upper == (3, 1, 2)

    def test_union_with_empty(self):
        a = Box((0, 0, 0), (1, 1, 1))
        assert a.union(Box.empty()) == a
        assert Box.empty().union(a) == a

    def test_intersects(self):
        a = Box((0, 0, 0), (1, 1, 1))
        assert a.intersects(Box((0.5, 0.5, 0.5), (2, 2, 2)))
        assert not a.intersects(Box((1.5, 0, 0), (2, 1, 1)))
        # touching faces count as intersecting
        assert a.intersects(Box((1, 0, 0), (2, 1, 1)))

    def test_contains_box(self):
        a = Box((0, 0, 0), (2, 2, 2))
        assert a.contains_box(Box((0.5, 0.5, 0.5), (1, 1, 1)))
        assert not a.contains_box(Box((0.5, 0.5, 0.5), (3, 1, 1)))
        assert a.contains_box(Box.empty())

    def test_contains_points(self):
        a = Box((0, 0, 0), (1, 1, 1))
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(a.contains_points(pts), [True, False, True])

    def test_split(self):
        a = Box((0, 0, 0), (2, 2, 2))
        left, right = a.split(0, 1.0)
        assert left.upper[0] == 1.0
        assert right.lower[0] == 1.0
        assert left.union(right) == a

    def test_roundtrip_array(self):
        a = Box((0, -1, 2), (3, 4, 5))
        assert Box.from_array(a.as_array()) == a

    @given(pts_strategy())
    def test_of_points_contains_all(self, pts):
        b = Box.of_points(pts)
        assert b.contains_points(pts).all()

    @given(pts_strategy(), pts_strategy())
    def test_union_contains_both(self, p1, p2):
        u = Box.of_points(p1).union(Box.of_points(p2))
        assert u.contains_box(Box.of_points(p1))
        assert u.contains_box(Box.of_points(p2))


class TestAttributeSpec:
    def test_dtype_normalized(self):
        s = AttributeSpec("x", "f4")
        assert s.dtype == np.dtype(np.float32)
        assert s.itemsize == 4


class TestParticleBatch:
    def _batch(self, n=10):
        rng = np.random.default_rng(0)
        return ParticleBatch(
            rng.random((n, 3)),
            {"mass": rng.random(n), "temp": rng.random(n)},
        )

    def test_basic(self):
        b = self._batch(10)
        assert len(b) == 10
        assert b.count == 10
        assert b.positions.dtype == np.float32
        assert b.nbytes == 10 * 3 * 4 + 2 * 10 * 8

    def test_attribute_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            ParticleBatch(np.zeros((5, 3)), {"bad": np.zeros(4)})

    def test_select(self):
        b = self._batch(10)
        s = b.select(np.array([1, 3, 5]))
        assert len(s) == 3
        np.testing.assert_array_equal(s.positions, b.positions[[1, 3, 5]])
        np.testing.assert_array_equal(s.attributes["mass"], b.attributes["mass"][[1, 3, 5]])

    def test_select_mask(self):
        b = self._batch(10)
        mask = b.attributes["mass"] > 0.5
        s = b.select(mask)
        assert len(s) == mask.sum()

    def test_concatenate(self):
        b1, b2 = self._batch(4), self._batch(6)
        c = ParticleBatch.concatenate([b1, b2])
        assert len(c) == 10
        np.testing.assert_array_equal(c.positions[:4], b1.positions)
        np.testing.assert_array_equal(c.attributes["temp"][4:], b2.attributes["temp"])

    def test_concatenate_empty_list(self):
        assert len(ParticleBatch.concatenate([])) == 0

    def test_concatenate_mismatched_attrs(self):
        b1 = ParticleBatch(np.zeros((2, 3)), {"a": np.zeros(2)})
        b2 = ParticleBatch(np.zeros((2, 3)), {"b": np.zeros(2)})
        with pytest.raises(ValueError, match="mismatched"):
            ParticleBatch.concatenate([b1, b2])

    def test_empty_with_specs(self):
        b = ParticleBatch.empty([AttributeSpec("m", np.float64)])
        assert len(b) == 0
        assert b.attributes["m"].dtype == np.float64

    def test_bounds(self):
        b = self._batch(10)
        assert b.bounds.contains_points(b.positions).all()

    def test_attribute_specs(self):
        specs = self._batch().attribute_specs()
        assert [s.name for s in specs] == ["mass", "temp"]
