"""Tests for the pluggable execution layer (repro.parallel).

The load-bearing property: every executor is an implementation detail of
*how fast* the pipeline runs, never of *what* it produces. Serial, thread,
and process backends must emit byte-identical BAT files and identical
query results on randomized workloads.
"""

import hashlib
import os

import numpy as np
import pytest

from repro.bat import AttributeFilter, BATFileCache
from repro.bat.query import QueryStats, query_file
from repro.core import TwoPhaseReader, TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.machines import testing_machine as make_test_machine
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    parse_executor_spec,
)
from repro.types import Box
from tests.test_pipeline import make_rank_data

# keep pools tiny: CI and the dev container may have a single core, and
# correctness (ordering, byte-identity) is what these tests pin down
EXECUTOR_SPECS = ["serial", "thread:2", "process:2"]


def _square(x):
    return x * x


class TestExecutors:
    @pytest.mark.parametrize("spec", EXECUTOR_SPECS)
    def test_map_preserves_input_order(self, spec):
        with get_executor(spec) as ex:
            assert ex.map(_square, list(range(20))) == [i * i for i in range(20)]

    @pytest.mark.parametrize("spec", EXECUTOR_SPECS)
    def test_map_empty_and_single(self, spec):
        with get_executor(spec) as ex:
            assert ex.map(_square, []) == []
            assert ex.map(_square, [7]) == [49]

    def test_parse_spec(self):
        assert parse_executor_spec("serial") == ("serial", None)
        assert parse_executor_spec("thread") == ("thread", None)
        assert parse_executor_spec("process:4") == ("process", 4)
        with pytest.raises(ValueError):
            parse_executor_spec("gpu")
        with pytest.raises(ValueError):
            parse_executor_spec("thread:0")

    def test_get_executor_kinds(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread:2"), ThreadExecutor)
        assert isinstance(get_executor("process:2"), ProcessExecutor)
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread:3")
        ex = get_executor()
        assert ex.kind == "thread" and ex.workers == 3
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert get_executor().kind == "serial"

    def test_pool_close_is_idempotent(self):
        ex = get_executor("thread:2")
        ex.map(_square, [1, 2, 3])
        ex.close()
        ex.close()


def _hash_files(directory):
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(directory.glob("*.bat"))
    }


@pytest.fixture(scope="module")
def random_workloads():
    # randomized workloads per the issue: different rank counts, particle
    # counts, and seeds, so byte-identity isn't a fluke of one layout
    return [
        make_rank_data(nranks=8, seed=11, min_n=100, max_n=900),
        make_rank_data(nranks=16, seed=42, min_n=50, max_n=2000),
    ]


class TestByteIdenticalOutputs:
    """Property: serial/thread/process write the same bytes, answer the same."""

    @pytest.fixture(scope="class")
    def written(self, random_workloads, tmp_path_factory):
        machine = make_test_machine()
        runs = []
        for w, data in enumerate(random_workloads):
            per_spec = {}
            for spec in EXECUTOR_SPECS:
                out = tmp_path_factory.mktemp(f"w{w}-{spec.replace(':', '_')}")
                writer = TwoPhaseWriter(machine, target_size=64 * 1024, executor=spec)
                report = writer.write(data, out_dir=out, name="prop")
                writer.executor.close()
                per_spec[spec] = (out, report)
            runs.append((data, per_spec))
        return runs

    def test_file_bytes_identical(self, written):
        for _, per_spec in written:
            ref = _hash_files(per_spec["serial"][0])
            assert len(ref) > 1  # multiple aggregators, or the test is vacuous
            for spec in EXECUTOR_SPECS[1:]:
                assert _hash_files(per_spec[spec][0]) == ref, spec

    def test_metadata_identical(self, written):
        for _, per_spec in written:
            texts = {
                spec: (out / "prop.meta.json").read_text()
                for spec, (out, _) in per_spec.items()
            }
            assert texts["thread:2"] == texts["serial"]
            assert texts["process:2"] == texts["serial"]

    def test_query_file_results_identical(self, written):
        from repro.bat.file import BATFile

        box = Box((0.5, 0.5, 0.0), (3.0, 3.0, 1.0))
        for _, per_spec in written:
            ref = None
            for spec, (out, _) in per_spec.items():
                parts = []
                for p in sorted(out.glob("*.bat")):
                    with BATFile(p) as f:
                        batch, _ = query_file(f, quality=0.7, box=box)
                        parts.append(batch.positions)
                got = np.concatenate(parts) if parts else np.empty((0, 3))
                if ref is None:
                    ref = got
                else:
                    np.testing.assert_array_equal(got, ref, err_msg=spec)

    def test_dataset_query_identical(self, written):
        filt = AttributeFilter("mass", 0.2, 0.7)
        for _, per_spec in written:
            ref = None
            for spec, (_, report) in per_spec.items():
                with BATDataset(report.metadata_path, executor=spec) as ds:
                    batch, stats = ds.query(quality=1.0, filters=[filt])
                    ds.executor.close()
                got = (batch.positions, batch.attributes["mass"])
                if ref is None:
                    ref = got
                    assert stats.points_tested > 0
                else:
                    np.testing.assert_array_equal(got[0], ref[0], err_msg=spec)
                    np.testing.assert_array_equal(got[1], ref[1], err_msg=spec)

    def test_reader_parallel_matches_serial(self, written):
        machine = make_test_machine()
        for data, per_spec in written:
            out, report = per_spec["serial"]
            bounds = np.roll(data.bounds, -1, axis=0)
            serial = TwoPhaseReader(machine).read(report.metadata, bounds, data_dir=out)
            threaded = TwoPhaseReader(machine, executor="thread:2").read(
                report.metadata, bounds, data_dir=out
            )
            assert serial.batches is not None
            for got, want in zip(threaded.batches, serial.batches):
                np.testing.assert_array_equal(got.positions, want.positions)


class TestDeterministicStats:
    def test_merge_ordered_sorts_by_index(self):
        def stats(tested, pruned):
            s = QueryStats()
            s.points_tested = tested
            s.pruned_spatial = pruned
            s.treelets_visited = 1
            return s

        shuffled = [(2, stats(30, 3)), (0, stats(10, 1)), (1, stats(20, 2))]
        merged = QueryStats.merge_ordered(shuffled)
        in_order = QueryStats.merge_ordered(sorted(shuffled, key=lambda p: p[0]))
        assert merged.points_tested == in_order.points_tested == 60
        assert merged.pruned_spatial == 6
        assert merged.treelets_visited == 3

    def test_dataset_stats_identical_across_executors(self, random_workloads, tmp_path):
        data = random_workloads[0]
        writer = TwoPhaseWriter(make_test_machine(), target_size=64 * 1024)
        report = writer.write(data, out_dir=tmp_path, name="det")
        collected = []
        for spec in EXECUTOR_SPECS:
            with BATDataset(report.metadata_path, executor=spec) as ds:
                _, stats = ds.query(quality=0.5, box=Box((0, 0, 0), (2, 2, 1)))
                ds.executor.close()
            collected.append(
                (stats.points_tested, stats.pruned_spatial, stats.pruned_bitmap,
                 stats.nodes_visited, stats.treelets_visited)
            )
        assert collected[1] == collected[0]
        assert collected[2] == collected[0]


class TestFileCache:
    @pytest.fixture()
    def files(self, random_workloads, tmp_path):
        data = random_workloads[0]
        writer = TwoPhaseWriter(make_test_machine(), target_size=32 * 1024)
        report = writer.write(data, out_dir=tmp_path, name="lru")
        return sorted(tmp_path.glob("*.bat"))

    def test_hit_returns_same_handle(self, files):
        with BATFileCache(capacity=4) as cache:
            a = cache.get(files[0])
            assert cache.get(files[0]) is a
            assert cache.hits == 1 and cache.misses == 1

    def test_eviction_is_lru_and_closes(self, files):
        assert len(files) >= 3
        with BATFileCache(capacity=2) as cache:
            a = cache.get(files[0])
            cache.get(files[1])
            cache.get(files[0])  # refresh 0 so 1 is now least-recent
            cache.get(files[2])  # evicts 1
            assert cache.evictions == 1
            assert a.n_points > 0  # handle 0 survived
            again = cache.get(files[1])  # reopened, fresh handle
            assert again.n_points > 0

    def test_close_empties_cache(self, files):
        cache = BATFileCache(capacity=4)
        cache.get(files[0])
        cache.get(files[1])
        cache.close()
        assert len(cache) == 0

    def test_shared_cache_across_datasets(self, random_workloads, tmp_path):
        data = random_workloads[0]
        writer = TwoPhaseWriter(make_test_machine(), target_size=64 * 1024)
        r1 = writer.write(data, out_dir=tmp_path / "a", name="s1")
        r2 = writer.write(data, out_dir=tmp_path / "b", name="s2")
        cache = BATFileCache(capacity=8)
        ds1 = BATDataset(r1.metadata_path, file_cache=cache)
        ds2 = BATDataset(r2.metadata_path, file_cache=cache)
        ds1.query(quality=0.3)
        ds2.query(quality=0.3)
        assert cache.misses > 0
        ds1.close()  # drops only ds1's handles
        ds2.query(quality=0.5)  # ds2 still usable through the shared cache
        ds2.close()
        cache.close()
        assert len(cache) == 0
