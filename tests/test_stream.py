"""Tests for the streaming query engine and increment reassembly.

The load-bearing property: a stream's increments, reassembled by their
``(file_rank, treelet_rank, slot)`` order keys, are byte-identical to a
direct one-shot query — and every *prefix* of the stream is
byte-identical to a direct query at the last consumed rung's quality, so
a client can stop anywhere (or be shed by the service anywhere) and
still hold an exact multiresolution result.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryRequest, reassemble_stream
from repro.api import StreamIncrement
from repro.bat import AttributeFilter, BATBuildConfig
from repro.bat.filecache import BATFileCache
from repro.bat.query import default_quality_ladder, quality_for_depth
from repro.core import TwoPhaseWriter
from repro.core.dataset import BATDataset
from repro.errors import InvalidRequestError
from repro.machines import testing_machine
from repro.types import Box, ParticleBatch
from tests.test_pipeline import make_rank_data

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

BOX = Box((0.5, 0.5, 0.1), (3.0, 3.0, 0.8))
FILT = (AttributeFilter("mass", 0.2, 0.8),)


@pytest.fixture(scope="module", params=["v3", "v4"])
def dataset(request, tmp_path_factory):
    data = make_rank_data(nranks=9, seed=3)
    out = tmp_path_factory.mktemp(f"stream_{request.param}")
    kw = {}
    if request.param == "v4":
        kw["bat_config"] = BATBuildConfig(codecs="auto")
    report = TwoPhaseWriter(testing_machine(), target_size=128 * 1024, **kw).write(
        data, out_dir=out, name="s"
    )
    with BATDataset(report.metadata_path) as ds:
        yield ds


def canon(batch):
    out = [None if batch.positions is None else batch.positions.tobytes()]
    for k, v in batch.attributes.items():
        out.append((k, str(v.dtype), v.tobytes()))
    return out


REQUESTS = [
    QueryRequest(),
    QueryRequest(quality=0.6, box=BOX),
    QueryRequest(quality=0.9, prev_quality=0.13, box=BOX, filters=FILT),
    QueryRequest(quality=0.7, columns=("mass",)),
    QueryRequest(quality=0.7, box=BOX, columns=("mass", "positions")),
    QueryRequest(quality=0.0),
    QueryRequest(quality=0.5, prev_quality=0.5),
]


class TestQualityLadder:
    def test_rungs_are_exact_depth_qualities(self):
        # max_depth 7 -> 8 levels; e(q) inverts to (2^e - 1) / (2^8 - 1)
        for e in range(9):
            assert quality_for_depth(e, 7) == (2.0**e - 1.0) / (2.0**8 - 1.0)

    def test_ladder_ends_at_quality_and_respects_prev(self):
        ladder = default_quality_ladder(0.8, 0.1)
        assert ladder[-1] == 0.8
        assert all(0.1 < q <= 0.8 for q in ladder)
        assert list(ladder) == sorted(ladder)

    def test_degenerate_window_single_rung(self):
        assert default_quality_ladder(0.05, 0.04) == (0.05,)

    def test_full_range_has_many_rungs(self):
        assert len(default_quality_ladder(1.0, 0.0)) >= 8


class TestStreamIdentity:
    @pytest.mark.parametrize("req", REQUESTS, ids=range(len(REQUESTS)))
    def test_reassembly_equals_direct(self, dataset, req):
        direct = dataset.query(req)
        incs = list(dataset.stream(req))
        assert canon(reassemble_stream(incs).batch) == canon(direct.batch)

    def test_every_prefix_equals_direct_at_rung(self, dataset):
        req = QueryRequest(quality=0.9, prev_quality=0.13, box=BOX, filters=FILT)
        incs = list(dataset.stream(req))
        assert len(incs) > 1
        for k in range(len(incs)):
            ref = dataset.query(
                QueryRequest(
                    quality=incs[k].quality,
                    prev_quality=req.prev_quality,
                    box=req.box,
                    filters=req.filters,
                )
            )
            assert canon(reassemble_stream(incs[: k + 1]).batch) == canon(ref.batch)

    def test_each_increment_is_the_direct_window(self, dataset):
        req = QueryRequest(quality=0.8, box=BOX)
        prev = 0.0
        for inc in dataset.stream(req):
            ref = dataset.query(
                QueryRequest(quality=inc.quality, prev_quality=prev, box=BOX)
            )
            assert canon(inc.batch) == canon(ref.batch)
            prev = inc.quality

    def test_custom_ladder(self, dataset):
        req = QueryRequest(quality=0.35)
        incs = list(dataset.stream(req, ladder=(0.01, 0.2, 0.35)))
        assert [i.quality for i in incs] == [0.01, 0.2, 0.35]
        direct = dataset.query(req)
        assert canon(reassemble_stream(incs).batch) == canon(direct.batch)

    def test_final_stats_match_direct(self, dataset):
        req = QueryRequest(quality=0.9, box=BOX, filters=FILT)
        direct = dataset.query(req)
        incs = list(dataset.stream(req))
        s = incs[-1].stats
        for fld in (
            "points_returned",
            "files_opened",
            "treelets_visited",
            "pruned_spatial",
            "pruned_bitmap",
        ):
            assert getattr(s, fld) == getattr(direct.stats, fld)

    @SETTINGS
    @given(
        quality=st.floats(0.0, 1.0),
        prev_frac=st.floats(0.0, 1.0),
        use_box=st.booleans(),
        use_filter=st.booleans(),
    )
    def test_random_windows_reassemble_exactly(
        self, dataset, quality, prev_frac, use_box, use_filter
    ):
        req = QueryRequest(
            quality=quality,
            prev_quality=quality * prev_frac,
            box=BOX if use_box else None,
            filters=FILT if use_filter else (),
        )
        direct = dataset.query(req)
        incs = list(dataset.stream(req))
        assert canon(reassemble_stream(incs).batch) == canon(direct.batch)


class TestStreamValidation:
    def test_descending_ladder_rejected(self, dataset):
        with pytest.raises(InvalidRequestError):
            dataset.stream(QueryRequest(quality=0.5), ladder=(0.4, 0.2, 0.5))

    def test_ladder_must_end_at_quality(self, dataset):
        with pytest.raises(InvalidRequestError):
            dataset.stream(QueryRequest(quality=0.5), ladder=(0.2, 0.4))

    def test_unknown_filter_rejected_eagerly(self, dataset):
        with pytest.raises(Exception):
            dataset.stream(
                QueryRequest(quality=0.5, filters=(AttributeFilter("nope", 0, 1),))
            )


class TestReassemble:
    def test_empty_raises(self):
        with pytest.raises(InvalidRequestError):
            reassemble_stream([])

    def test_mixed_keyed_and_preordered_raises(self, dataset):
        keyed = list(dataset.stream(QueryRequest(quality=0.4)))
        pre = StreamIncrement(
            quality=0.4, prev_quality=0.0, batch=keyed[0].batch, order=None
        )
        with pytest.raises(InvalidRequestError):
            reassemble_stream([keyed[0], pre])

    def test_single_preordered_passthrough(self, dataset):
        direct = dataset.query(QueryRequest(quality=0.4))
        inc = StreamIncrement(
            quality=0.4, prev_quality=0.0, batch=direct.batch, order=None
        )
        assert reassemble_stream([inc]).batch is direct.batch


class TestFileHandleLease:
    def test_stream_survives_eviction_pressure(self, tmp_path):
        """A mid-stream file never loses its sections to LRU eviction."""
        data = make_rank_data(nranks=9, seed=5)
        report = TwoPhaseWriter(testing_machine(), target_size=64 * 1024).write(
            data, out_dir=tmp_path, name="lease"
        )
        cache = BATFileCache(1)  # capacity one: every other open evicts
        with BATDataset(report.metadata_path, file_cache=cache) as ds:
            direct = ds.query(QueryRequest(quality=0.8))
            gen = ds.stream(QueryRequest(quality=0.8))
            incs = [next(gen)]
            # interleave full queries that would evict the leased handles
            ds.query(QueryRequest(quality=0.3))
            incs.extend(gen)
            assert canon(reassemble_stream(incs).batch) == canon(direct.batch)
        assert cache.stats()["leased"] == 0

    def test_lease_released_on_abandoned_stream(self, tmp_path):
        data = make_rank_data(nranks=4, seed=6)
        report = TwoPhaseWriter(testing_machine(), target_size=64 * 1024).write(
            data, out_dir=tmp_path, name="drop"
        )
        cache = BATFileCache(2)
        with BATDataset(report.metadata_path, file_cache=cache) as ds:
            gen = ds.stream(QueryRequest(quality=1.0))
            next(gen)
            gen.close()  # client walked away mid-stream
            assert cache.stats()["leased"] == 0


def test_empty_increment_batches_are_typed(dataset):
    """Rungs that add nothing still carry correctly-typed empty batches."""
    incs = list(dataset.stream(QueryRequest(quality=1.0, box=BOX, filters=FILT)))
    specs = {sp.name for sp in dataset.attribute_specs()}
    for inc in incs:
        assert set(inc.batch.attributes) == specs
        assert isinstance(inc.batch, ParticleBatch)
        if len(inc.batch) == 0:
            assert inc.order is not None and inc.order.shape == (0, 3)
            assert inc.batch.positions.dtype == np.float32
