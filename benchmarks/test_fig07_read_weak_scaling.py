"""Fig 7: read bandwidth weak scaling vs IOR on Stampede2 and Summit.

Paper shape: mirrors the writes — many-small-file overhead hurts FPP and
small targets, shared-file coupling limits scalability, and the two-phase
read pipeline with a suitable target size wins beyond moderate core
counts. On Summit, small/medium aggregation flattens by 43k cores while
256 MB keeps scaling.
"""

import pytest

from conftest import MB, STAMPEDE2_RANKS, SUMMIT_RANKS, emit
from repro.bench import format_series, weak_scaling
from repro.machines import stampede2, summit

TARGETS = [8 * MB, 64 * MB, 256 * MB]


@pytest.mark.parametrize(
    "machine,ranks",
    [(stampede2(), STAMPEDE2_RANKS), (summit(), SUMMIT_RANKS)],
    ids=["stampede2", "summit"],
)
def test_fig07_read_weak_scaling(benchmark, machine, ranks):
    points = benchmark.pedantic(
        weak_scaling, args=(machine, ranks), kwargs={"target_sizes": TARGETS},
        rounds=1, iterations=1,
    )
    emit(
        format_series(
            points, "nranks", "read_bandwidth",
            title=f"Fig 7 ({machine.name}): read bandwidth weak scaling (GB/s)",
        )
    )

    by = {(p.label, p.nranks): p.read_bandwidth for p in points}
    large = ranks[-1]
    best_tp = max(by[(f"two-phase-{t // MB}MB", large)] for t in TARGETS)
    assert best_tp > by[("ior-fpp", large)]
    assert best_tp > by[("ior-shared", large)]
    # the largest aggregation size flattens off least rapidly (paper, Summit)
    growth_256 = by[("two-phase-256MB", large)] / by[("two-phase-256MB", ranks[-2])]
    growth_8 = by[("two-phase-8MB", large)] / by[("two-phase-8MB", ranks[-2])]
    assert growth_256 > growth_8
