"""Fig 11: adaptive vs AUG on the Dam Break time series.

Paper shape: on the 2M/1536 configuration the file-per-process mode of
both strategies performs best (and similarly) for writes, with adaptive
giving slightly faster reads; on 8M/6144 the 3 MB adaptive target wins
writes at a 1.5–2x speed-up over AUG with up to 3x on reads, and the gap
grows with scale.
"""

import numpy as np
import pytest

from conftest import MB, emit
from repro.bench import dam_break_series, format_table
from repro.machines import stampede2

TIMESTEPS = (0, 1001, 2001, 3001, 4001)


def _table(rows, targets, title):
    by = {(r["timestep"], r["target_mb"], r["strategy"]): r for r in rows}
    table = []
    for ts in TIMESTEPS:
        line = [ts]
        for t in targets:
            a = by[(ts, t // MB, "adaptive")]["write_bandwidth"]
            g = by[(ts, t // MB, "aug")]["write_bandwidth"]
            ar = by[(ts, t // MB, "adaptive")]["read_bandwidth"]
            gr = by[(ts, t // MB, "aug")]["read_bandwidth"]
            line.append(f"w {a/1e9:.1f}/{g/1e9:.1f} r {ar/1e9:.1f}/{gr/1e9:.1f}")
        table.append(line)
    emit(
        format_table(
            ["timestep"] + [f"{t // MB}MB adp/aug" for t in targets], table, title=title
        )
    )
    return by


@pytest.fixture(scope="module")
def dam_2m():
    return dam_break_series(
        stampede2(), total_particles=2_000_000, nranks=1536,
        timesteps=TIMESTEPS, target_sizes=(1 * MB, 3 * MB), sample_size=250_000,
    )


@pytest.fixture(scope="module")
def dam_8m():
    return dam_break_series(
        stampede2(), total_particles=8_000_000, nranks=6144,
        timesteps=TIMESTEPS, target_sizes=(1 * MB, 3 * MB), sample_size=250_000,
    )


def test_fig11a_2m_write(benchmark, dam_2m):
    rows = benchmark.pedantic(lambda: dam_2m, rounds=1, iterations=1)
    by = _table(rows, (1 * MB, 3 * MB), "Fig 11a/c: 2M Dam Break @1536 ranks (GB/s)")
    # 2M on 1536 ranks: ~1.3k particles/rank -> both strategies near
    # file-per-process; write performance similar (paper: "best (and
    # similar)")
    for ts in TIMESTEPS:
        a = by[(ts, 1, "adaptive")]["write_bandwidth"]
        g = by[(ts, 1, "aug")]["write_bandwidth"]
        assert 0.5 < a / g < 2.2

    # adaptive reads at least as good on aggregate (paper: "slightly faster")
    ratios = [
        by[(ts, t, "adaptive")]["read_bandwidth"] / by[(ts, t, "aug")]["read_bandwidth"]
        for ts in TIMESTEPS
        for t in (1, 3)
    ]
    assert float(np.exp(np.mean(np.log(ratios)))) > 0.95


def test_fig11b_8m_write(benchmark, dam_8m):
    rows = benchmark.pedantic(lambda: dam_8m, rounds=1, iterations=1)
    by = _table(rows, (1 * MB, 3 * MB), "Fig 11b/d: 8M Dam Break @6144 ranks (GB/s)")
    # paper: 3MB adaptive achieves the best write performance overall, at a
    # 1.5-2x speed-up over AUG at the same target size
    w_ratios = [
        by[(ts, 3, "adaptive")]["write_bandwidth"] / by[(ts, 3, "aug")]["write_bandwidth"]
        for ts in TIMESTEPS
    ]
    assert max(w_ratios) > 1.4
    assert float(np.exp(np.mean(np.log(w_ratios)))) > 1.1
    r_ratios = [
        by[(ts, 3, "adaptive")]["read_bandwidth"] / by[(ts, 3, "aug")]["read_bandwidth"]
        for ts in TIMESTEPS
    ]
    assert max(r_ratios) > 1.4


def test_fig11_gap_grows_with_scale(benchmark, dam_2m, dam_8m):
    """Paper: "The performance gap between adaptive and AUG aggregation
    grows with the particle and core count."

    Both configurations carry the same per-rank payload (~57 KB), so our
    first-order write model sees similar aggregation behaviour at both
    scales; the scale-dependent part of the gap shows on the read side,
    where the 4x larger file population amplifies AUG's imbalance. We
    assert the read gap grows and the write advantage holds at both scales
    (see EXPERIMENTS.md for the discussion).
    """

    def gap(rows, key):
        by = {(r["timestep"], r["target_mb"], r["strategy"]): r for r in rows}
        ratios = [
            by[(ts, 3, "adaptive")][key] / by[(ts, 3, "aug")][key] for ts in TIMESTEPS
        ]
        return float(np.exp(np.mean(np.log(ratios))))

    def run():
        return (
            gap(dam_2m, "write_bandwidth"),
            gap(dam_8m, "write_bandwidth"),
            gap(dam_2m, "read_bandwidth"),
            gap(dam_8m, "read_bandwidth"),
        )

    w2, w8, r2, r8 = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"mean adaptive/AUG speed-up at 3MB: writes 2M={w2:.2f}x 8M={w8:.2f}x; "
        f"reads 2M={r2:.2f}x 8M={r8:.2f}x"
    )
    assert r8 > r2  # read gap grows with scale
    assert w2 > 1.3 and w8 > 1.3  # write advantage holds at both scales
