"""Ablation: aggregation factor vs scale (§VI-A2 recommendations).

The paper recommends ~1:1–4:1 aggregation at small scales and >=16:1 at
large scales. This ablation sweeps the factor (via the target size) at a
small and a large rank count and checks the recommendation falls out of
the model: the best factor grows with scale.
"""

import numpy as np

from conftest import emit
from repro.bench import format_table, two_phase_write_point
from repro.machines import stampede2
from repro.workloads import uniform_rank_data

PER_RANK = 4.06e6
FACTORS = (1, 2, 4, 8, 16, 32, 64)


def test_best_aggregation_factor_grows_with_scale(benchmark):
    def run():
        out = {}
        for nranks in (384, 24576):
            data = uniform_rank_data(nranks)
            bws = {}
            for f in FACTORS:
                target = int(PER_RANK * f)
                rep = two_phase_write_point(stampede2(), data, target)
                bws[f] = rep.bandwidth
            out[nranks] = bws
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [nranks] + [f"{bws[f] / 1e9:.1f}" for f in FACTORS] for nranks, bws in out.items()
    ]
    emit(
        format_table(
            ["ranks"] + [f"{f}:1" for f in FACTORS],
            table,
            title="Ablation: write bandwidth (GB/s) vs aggregation factor",
        )
    )

    best_small = max(out[384], key=out[384].get)
    best_large = max(out[24576], key=out[24576].get)
    emit(f"best factor: {best_small}:1 at 384 ranks, {best_large}:1 at 24576 ranks")
    assert best_small <= 8  # small scale: small factors
    assert best_large >= 16  # large scale: heavy aggregation
    assert best_large > best_small
