"""Fig 12: breakdowns on the 8M Dam Break, 3 MB target.

Paper shape: the Dam Break has a fixed particle count, so an ideal
strategy writes in constant time; adaptive aggregation stays nearly
constant across the series while AUG's write time tracks the changing
particle distribution.
"""

import numpy as np
import pytest

from conftest import MB, emit
from repro.bench import dam_break_series, format_table
from repro.machines import stampede2

TIMESTEPS = (0, 501, 1001, 2001, 3001, 4001)
MAJOR = ("transfer to aggregators", "construct BAT", "write files")


def test_fig12_adaptive_constant_aug_drifts(benchmark):
    rows = benchmark.pedantic(
        dam_break_series,
        args=(stampede2(),),
        kwargs=dict(
            total_particles=8_000_000, nranks=6144, timesteps=TIMESTEPS,
            target_sizes=(3 * MB,), sample_size=250_000,
        ),
        rounds=1, iterations=1,
    )
    by = {(r["timestep"], r["strategy"]): r for r in rows}

    table = []
    for ts in TIMESTEPS:
        for strat in ("adaptive", "aug"):
            r = by[(ts, strat)]
            table.append(
                [ts, strat, f"{r['write_seconds']:.3f}s", r["n_files"], f"{r['imbalance']:.1f}x"]
                + [f"{r['write_breakdown'].get(p, 0):.3f}s" for p in MAJOR]
            )
    emit(
        format_table(
            ["timestep", "strategy", "total", "files", "leaf imb."] + list(MAJOR),
            table,
            title="Fig 12: 8M Dam Break write breakdown, 3MB target (6144 ranks)",
        )
    )

    a_times = np.array([by[(ts, "adaptive")]["write_seconds"] for ts in TIMESTEPS])
    g_times = np.array([by[(ts, "aug")]["write_seconds"] for ts in TIMESTEPS])
    # coefficient of variation: adaptive write time is markedly steadier
    cv_a = a_times.std() / a_times.mean()
    cv_g = g_times.std() / g_times.mean()
    emit(f"write-time variation: adaptive CV={cv_a:.2f}, AUG CV={cv_g:.2f}")
    assert cv_a < cv_g
    # adaptive leaf imbalance stays low throughout
    for ts in TIMESTEPS:
        assert by[(ts, "adaptive")]["imbalance"] <= by[(ts, "aug")]["imbalance"] * 1.05
