"""§VI-B text: the BAT layout's storage overhead.

Paper: "we achieve low memory overhead for our layout, requiring just 0.9%
additional memory to store" — the structure (trees, bitmaps, dictionary,
page alignment) on top of the raw particle payload. Overhead amortizes
with size: page-aligned treelets cost a near-constant number of padding
bytes each, so bigger inputs sit closer to the asymptotic ~1%.
"""

import numpy as np

from conftest import emit
from repro.bat import build_bat
from repro.bench import format_table
from repro.types import ParticleBatch
from repro.workloads import CoalBoiler


def test_memory_overhead(benchmark):
    def run():
        rows = []
        rng = np.random.default_rng(0)
        for n in (50_000, 200_000, 800_000):
            pos = rng.random((n, 3)).astype(np.float32)
            attrs = {f"a{i}": rng.random(n) for i in range(7)}
            built = build_bat(ParticleBatch(pos, attrs))
            rows.append((n, built.raw_bytes, built.overhead_bytes, built.overhead_fraction))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["particles", "raw MB", "overhead KB", "overhead"],
            [
                [n, f"{raw / 1e6:.1f}", f"{ov / 1e3:.0f}", f"{frac:.2%}"]
                for n, raw, ov, frac in rows
            ],
            title="BAT storage overhead vs raw data (paper: ~0.9%)",
        )
    )
    fracs = [frac for *_, frac in rows]
    # overhead shrinks with size and lands in the paper's low-percent regime
    assert fracs[-1] < fracs[0]
    assert fracs[-1] < 0.05


def test_memory_overhead_real_workload(benchmark):
    """Same check on the (scaled) Coal Boiler distribution with its 7
    attributes — clustered data, not uniform noise."""

    def run():
        boiler = CoalBoiler()
        batch = boiler.sample(4501, 600_000)
        return build_bat(batch)

    built = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"Coal Boiler 600k particles: raw {built.raw_bytes / 1e6:.1f} MB, "
        f"overhead {built.overhead_fraction:.2%}, dictionary {built.dict_entries} entries"
    )
    assert built.overhead_fraction < 0.05
    # the 16-bit bitmap dictionary never comes close to its 65k limit
    assert built.dict_entries < 65_536 // 2
