"""Fig 9: adaptive vs AUG I/O on the Coal Boiler time series at 1536 ranks.

Paper shape: adaptive aggregation improves writes by up to 2.5x and reads
by up to 3x over AUG; lower target sizes degrade as the particle count
grows while larger targets surpass them.
"""

import numpy as np
import pytest

from conftest import MB, emit
from repro.bench import coal_boiler_series, format_table
from repro.machines import stampede2

TIMESTEPS = (501, 1501, 2501, 3501, 4501)
TARGETS = (8 * MB, 16 * MB, 32 * MB, 64 * MB)


@pytest.fixture(scope="module")
def series():
    return coal_boiler_series(
        stampede2(), nranks=1536, timesteps=TIMESTEPS, target_sizes=TARGETS,
        sample_size=300_000,
    )


def test_fig09a_writes(benchmark, series):
    rows = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    by = {(r["timestep"], r["target_mb"], r["strategy"]): r for r in rows}
    table = []
    speedups = []
    for ts in TIMESTEPS:
        line = [ts]
        for t in TARGETS:
            a = by[(ts, t // MB, "adaptive")]["write_bandwidth"]
            g = by[(ts, t // MB, "aug")]["write_bandwidth"]
            speedups.append(a / g)
            line.append(f"{a / 1e9:.1f}/{g / 1e9:.1f} ({a / g:.2f}x)")
        table.append(line)
    emit(
        format_table(
            ["timestep"] + [f"{t // MB}MB adp/aug" for t in TARGETS],
            table,
            title="Fig 9a: Coal Boiler write bandwidth, adaptive vs AUG (GB/s)",
        )
    )
    # adaptive never loses badly, and wins big somewhere (paper: up to 2.5x)
    assert min(speedups) > 0.85
    assert max(speedups) > 1.8


def test_fig09b_reads(benchmark, series):
    rows = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    by = {(r["timestep"], r["target_mb"], r["strategy"]): r for r in rows}
    table = []
    speedups = []
    for ts in TIMESTEPS:
        line = [ts]
        for t in TARGETS:
            a = by[(ts, t // MB, "adaptive")]["read_bandwidth"]
            g = by[(ts, t // MB, "aug")]["read_bandwidth"]
            speedups.append(a / g)
            line.append(f"{a / 1e9:.1f}/{g / 1e9:.1f} ({a / g:.2f}x)")
        table.append(line)
    emit(
        format_table(
            ["timestep"] + [f"{t // MB}MB adp/aug" for t in TARGETS],
            table,
            title="Fig 9b: Coal Boiler read bandwidth, adaptive vs AUG (GB/s)",
        )
    )
    # individual (timestep, target) points can cross (they do in the
    # paper's curves too); the claim is the aggregate advantage, with large
    # wins at the favourable operating points (paper: up to 3x)
    geomean = float(np.exp(np.mean(np.log(speedups))))
    assert geomean > 1.1
    assert max(speedups) > 1.8
    assert min(speedups) > 0.4


def test_fig09_small_targets_lose_ground_as_population_grows(benchmark, series):
    rows = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    by = {(r["timestep"], r["target_mb"], r["strategy"]): r for r in rows}
    # paper: "As the number of particles increases, we observe decreasing
    # performance at lower target sizes, whereas larger target sizes
    # surpass them." Our filesystem model penalizes file-count growth more
    # mildly than the real Lustre MDS, so we assert the relative trend: the
    # small target's advantage over the large one shrinks over the series.
    early, late = TIMESTEPS[0], TIMESTEPS[-1]
    ratio_early = (
        by[(early, 8, "adaptive")]["write_bandwidth"]
        / by[(early, 64, "adaptive")]["write_bandwidth"]
    )
    ratio_late = (
        by[(late, 8, "adaptive")]["write_bandwidth"]
        / by[(late, 64, "adaptive")]["write_bandwidth"]
    )
    assert ratio_early > 1.0  # small targets win while the data is small
    assert ratio_late < ratio_early  # and lose ground as it grows
