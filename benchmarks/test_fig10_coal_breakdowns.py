"""Fig 10: timing breakdowns, adaptive vs AUG, Coal Boiler at 8 MB target.

Paper shape: the improved load balance of adaptive aggregation reduces time
spent in every major pipeline component, cutting total write time.
"""

import pytest

from conftest import MB, emit
from repro.bench import coal_boiler_series, format_table
from repro.machines import stampede2

TIMESTEPS = (501, 2501, 4501)
MAJOR = ("transfer to aggregators", "construct BAT", "write files")


def test_fig10_breakdowns(benchmark):
    rows = benchmark.pedantic(
        coal_boiler_series,
        args=(stampede2(),),
        kwargs=dict(
            nranks=1536, timesteps=TIMESTEPS, target_sizes=(8 * MB,), sample_size=300_000
        ),
        rounds=1, iterations=1,
    )
    by = {(r["timestep"], r["strategy"]): r for r in rows}

    table = []
    for ts in TIMESTEPS:
        for strat in ("adaptive", "aug"):
            bd = by[(ts, strat)]["write_breakdown"]
            table.append(
                [ts, strat, f"{by[(ts, strat)]['write_seconds']:.3f}s"]
                + [f"{bd.get(p, 0):.3f}s" for p in MAJOR]
            )
    emit(
        format_table(
            ["timestep", "strategy", "total"] + list(MAJOR),
            table,
            title="Fig 10: Coal Boiler write breakdown, 8MB target (1536 ranks)",
        )
    )

    for ts in TIMESTEPS[1:]:
        a = by[(ts, "adaptive")]["write_breakdown"]
        g = by[(ts, "aug")]["write_breakdown"]
        # adaptive total is lower, and the major components do not regress
        assert by[(ts, "adaptive")]["write_seconds"] < by[(ts, "aug")]["write_seconds"]
        major_a = sum(a.get(p, 0) for p in MAJOR)
        major_g = sum(g.get(p, 0) for p in MAJOR)
        assert major_a < major_g * 1.05
