"""Fig 6: timing breakdowns of the uniform write on both machines.

Paper shape: the bulk of time goes to writing aggregator files,
constructing the BATs, and transferring data; the 64 MB configuration
keeps phase fractions roughly constant while scaling, whereas the 8 MB one
spends a growing share in writes at high rank counts; Stampede2 spends a
larger fraction in BAT construction than Summit (slower per-particle build).
"""

import pytest

from conftest import MB, emit
from repro.bench import format_table, timing_breakdown
from repro.machines import stampede2, summit

RANKS = [384, 1536, 6144]


@pytest.mark.parametrize("machine", [stampede2(), summit()], ids=["stampede2", "summit"])
def test_fig06_breakdowns(benchmark, machine):
    def run():
        return {t: timing_breakdown(machine, RANKS, t * MB) for t in (8, 64)}

    rows_by_target = benchmark.pedantic(run, rounds=1, iterations=1)

    for target, rows in rows_by_target.items():
        phases = list(rows[0]["phases"])
        table = [
            [r["nranks"], f"{r['elapsed']:.3f}s"]
            + [f"{100 * r['fractions'].get(p, 0):.0f}%" for p in phases]
            for r in rows
        ]
        emit(
            format_table(
                ["ranks", "elapsed"] + phases, table,
                title=f"Fig 6 ({machine.name}, {target}MB target): phase fractions",
            )
        )

    # 64MB: fractions stay similar while scaling
    f64 = [r["fractions"]["write files"] for r in rows_by_target[64]]
    assert max(f64) - min(f64) < 0.45
    # 8MB: write share grows with rank count (metadata storm)
    f8 = [r["fractions"]["write files"] for r in rows_by_target[8]]
    assert f8[-1] > f8[0]
    # major components dominate
    for rows in rows_by_target.values():
        for r in rows:
            big3 = sum(
                r["fractions"].get(k, 0)
                for k in ("write files", "construct BAT", "transfer to aggregators")
            )
            assert big3 > 0.5


def test_fig06_stampede2_more_bat_time(benchmark):
    """Paper: a larger share of time goes to BAT construction on Stampede2."""

    def run():
        s = timing_breakdown(stampede2(), [1536], 64 * MB)[0]
        u = timing_breakdown(summit(), [1344], 64 * MB)[0]
        return s, u

    s, u = benchmark.pedantic(run, rounds=1, iterations=1)
    assert s["fractions"]["construct BAT"] > u["fractions"]["construct BAT"]
