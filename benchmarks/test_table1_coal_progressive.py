"""Table I: progressive single-thread read times on the Coal Boiler.

Real measurements (not simulated): BAT files are written to local storage
and read back through mmap, single-threaded, stepping quality 0.1 -> 1.0
in increments of 0.1 — the paper's desktop methodology. The paper's
finding: performance is similar across aggregation target sizes, and the
dominant cost factor is the number of points returned.
"""

import numpy as np

from conftest import emit
from repro.bench import format_table, progressive_read_benchmark


def test_table1_progressive_reads(benchmark, coal_dataset):
    data, paths = coal_dataset

    def run():
        return {t: progressive_read_benchmark(paths[t], steps=10) for t in sorted(paths)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["target size", "avg read (ms)", "throughput (pts/ms)"],
            [
                [f"{t}MB", f"{r['avg_read_ms']:.1f}", f"{r['throughput_pts_per_ms']:.0f}"]
                for t, r in results.items()
            ],
            title="Table I: Coal Boiler progressive single-thread reads (scaled dataset)",
        )
    )

    # every sweep returns the whole data set exactly once
    for r in results.values():
        assert r["total_points"] == data.total_particles

    # paper: similar performance across target sizes (within ~2x here; the
    # paper saw <10% on a much larger dataset where constants amortize)
    throughputs = [r["throughput_pts_per_ms"] for r in results.values()]
    assert max(throughputs) / min(throughputs) < 2.5
    assert min(throughputs) > 0


def test_table1_cost_tracks_points_returned(benchmark, coal_dataset):
    """Paper: 'The largest factor determining performance is the number of
    points queried.'"""
    _, paths = coal_dataset

    def run():
        return progressive_read_benchmark(paths[2], steps=10)

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    ms = np.array(r["per_step_ms"])
    pts = np.array(r["per_step_points"], dtype=np.float64)
    mask = pts > 0
    corr = np.corrcoef(ms[mask], pts[mask])[0, 1]
    emit(f"per-step time vs points correlation: {corr:.2f}")
    # positive coupling; at this scaled-down size the constant per-step
    # traversal overhead adds noise the paper's 40M-point runs don't see
    assert corr > 0.2
