"""Fig 5: write bandwidth weak scaling vs IOR on Stampede2 and Summit.

Paper shape: file-per-process performs well initially, degrades at 1536
ranks (Stampede2) / 672 ranks (Summit); shared-file modes flatten early
from global coupling; the two-phase approach overtakes everything at scale
once the target size is large enough.
"""

import pytest

from conftest import MB, STAMPEDE2_RANKS, SUMMIT_RANKS, emit
from repro.bench import format_series, weak_scaling
from repro.machines import stampede2, summit

TARGETS = [8 * MB, 64 * MB, 256 * MB]


@pytest.mark.parametrize(
    "machine,ranks",
    [(stampede2(), STAMPEDE2_RANKS), (summit(), SUMMIT_RANKS)],
    ids=["stampede2", "summit"],
)
def test_fig05_write_weak_scaling(benchmark, machine, ranks):
    points = benchmark.pedantic(
        weak_scaling, args=(machine, ranks), kwargs={"target_sizes": TARGETS},
        rounds=1, iterations=1,
    )
    emit(
        format_series(
            points, "nranks", "write_bandwidth",
            title=f"Fig 5 ({machine.name}): write bandwidth weak scaling (GB/s)",
        )
    )

    by = {(p.label, p.nranks): p.write_bandwidth for p in points}
    small, large = ranks[0], ranks[-1]

    # FPP initially strong, flat at scale
    assert by[("ior-fpp", small)] > by[("ior-shared", small)]
    assert by[("ior-fpp", large)] < 1.5 * by[("ior-fpp", ranks[-3])]
    # shared modes never scale
    assert by[("ior-shared", large)] < 2 * by[("ior-shared", small)]
    assert by[("ior-hdf5", large)] < by[("ior-shared", large)]
    # two-phase with a large target wins at scale (the headline claim)
    best_tp = max(by[(f"two-phase-{t // MB}MB", large)] for t in TARGETS)
    assert best_tp > by[("ior-fpp", large)]
    assert best_tp > by[("ior-shared", large)]
    # larger targets sustain scaling further than small ones at max scale
    assert by[("two-phase-256MB", large)] > by[("two-phase-8MB", large)]
