"""Ablation: phase-level vs discrete-event network models.

The scaling sweeps use the closed-form phase model (O(messages)); the
discrete-event simulator (max-min fair sharing, O(events x NICs)) is the
fidelity reference. This ablation checks where they agree — synchronized
aggregation patterns, where the phase model's assumptions hold — and
quantifies where they diverge: imbalanced patterns with staggered
completions, where the event model credits early finishers the bandwidth
the phase model charges them.
"""

import numpy as np
import pytest

from conftest import MB, emit
from repro.bench import format_table
from repro.core import AggTreeConfig, RankData, TwoPhaseWriter
from repro.machines import stampede2
from repro.workloads import CoalBoiler, uniform_rank_data


def _write_elapsed(data, target, model):
    writer = TwoPhaseWriter(
        stampede2(), target_size=target,
        agg_config=AggTreeConfig(target_size=target, overfull_cost_ratio=4.0, overfull_factor=1.5),
    )
    # re-plumb the cluster with the requested network model by monkeying
    # the pipeline would be invasive; instead run the transfer phase both
    # ways on the plan's message pattern.
    from repro.simmpi import Message, VirtualCluster
    from repro.simmpi.eventsim import simulate_transfers
    from repro.simmpi.network import transfer_phase

    plan = writer.build_plan(data)
    from repro.core.assign import assign_write_aggregators

    aggs = assign_write_aggregators(len(plan.leaves), data.nranks)
    msgs = []
    for leaf, agg in zip(plan.leaves, aggs):
        for r in leaf.rank_ids:
            c = int(data.counts[r])
            if c:
                msgs.append(Message(int(r), int(agg), c * data.bytes_per_particle))
    clocks = np.zeros(data.nranks)
    if model == "event":
        out = simulate_transfers(msgs, clocks, stampede2().network)
    else:
        out = transfer_phase(msgs, clocks, stampede2().network)
    return float(out.max()), len(msgs)


@pytest.mark.parametrize("target_mb", [8, 64])
def test_models_agree_on_uniform_aggregation(benchmark, target_mb):
    """Synchronized, balanced transfers: the models should agree closely."""

    def run():
        data = uniform_rank_data(384)
        a, n = _write_elapsed(data, target_mb * MB, "phase")
        b, _ = _write_elapsed(data, target_mb * MB, "event")
        return a, b, n

    phase_t, event_t, n = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"uniform 384 ranks, {target_mb}MB target ({n} messages): "
        f"phase {phase_t * 1e3:.2f} ms vs event {event_t * 1e3:.2f} ms "
        f"(ratio {event_t / phase_t:.2f})"
    )
    assert event_t == pytest.approx(phase_t, rel=0.35)


def test_event_model_credits_imbalanced_patterns(benchmark):
    """On the clustered boiler the per-aggregator loads differ wildly; the
    event model lets lightly loaded NICs finish early and is never slower
    than the phase model's conservative estimate."""

    def run():
        data = CoalBoiler().rank_data(1501, 384, sample_size=150_000)
        a, n = _write_elapsed(data, 8 * MB, "phase")
        b, _ = _write_elapsed(data, 8 * MB, "event")
        return a, b, n

    phase_t, event_t, n = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["model", "transfer ms", "messages"],
            [["phase", f"{phase_t * 1e3:.2f}", n], ["event", f"{event_t * 1e3:.2f}", n]],
            title="Network-model ablation: Coal Boiler aggregation transfer",
        )
    )
    assert event_t <= phase_t * 1.1
