"""Ablations over the Aggregation Tree's design choices (§III-A, §VII).

Two knobs the paper calls out:
- overfull leaves (cost threshold + size factor): trade occasional larger
  files for avoiding badly imbalanced splits;
- split-axis policy: longest-axis only (default) vs best across all axes.
"""

import numpy as np

from conftest import MB, emit
from repro.bench import format_table
from repro.core import AggTreeConfig, build_aggregation_tree
from repro.workloads import CoalBoiler


def _plan_stats(tree):
    sizes = tree.file_sizes() / MB
    return {
        "files": tree.n_leaves,
        "std": float(sizes.std()),
        "max": float(sizes.max()),
        "overfull": sum(1 for l in tree.leaves if l.overfull),
        "imbalance": tree.imbalance(),
    }


def test_overfull_leaves_reduce_bad_splits(benchmark):
    def run():
        rd = CoalBoiler().rank_data(4501, 1536, sample_size=300_000)
        base = build_aggregation_tree(
            rd.bounds, rd.counts, rd.bytes_per_particle, AggTreeConfig(target_size=8 * MB)
        )
        overfull = build_aggregation_tree(
            rd.bounds, rd.counts, rd.bytes_per_particle,
            AggTreeConfig(target_size=8 * MB, overfull_cost_ratio=4.0, overfull_factor=1.5),
        )
        return _plan_stats(base), _plan_stats(overfull)

    base, overfull = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["config", "files", "size std MB", "max MB", "overfull leaves"],
            [
                ["no overfull", base["files"], f"{base['std']:.1f}", f"{base['max']:.1f}", base["overfull"]],
                ["overfull 4.0/1.5x", overfull["files"], f"{overfull['std']:.1f}", f"{overfull['max']:.1f}", overfull["overfull"]],
            ],
            title="Ablation: overfull leaf rule (Coal Boiler ts 4501, 8MB)",
        )
    )
    assert base["overfull"] == 0
    assert overfull["overfull"] > 0
    # fewer files (merged bad splits) at a bounded max size
    assert overfull["files"] <= base["files"]
    assert overfull["max"] <= max(base["max"], 1.5 * 8 * 1.05)


def test_split_all_axes_vs_longest(benchmark):
    def run():
        rd = CoalBoiler().rank_data(2501, 1536, sample_size=300_000)
        longest = build_aggregation_tree(
            rd.bounds, rd.counts, rd.bytes_per_particle, AggTreeConfig(target_size=8 * MB)
        )
        allax = build_aggregation_tree(
            rd.bounds, rd.counts, rd.bytes_per_particle,
            AggTreeConfig(target_size=8 * MB, split_all_axes=True),
        )
        return _plan_stats(longest), _plan_stats(allax)

    longest, allax = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["policy", "files", "size std MB", "max MB", "leaf imbalance"],
            [
                ["longest axis", longest["files"], f"{longest['std']:.1f}", f"{longest['max']:.1f}", f"{longest['imbalance']:.2f}"],
                ["best of all axes", allax["files"], f"{allax['std']:.1f}", f"{allax['max']:.1f}", f"{allax['imbalance']:.2f}"],
            ],
            title="Ablation: split-axis policy (Coal Boiler ts 2501, 8MB)",
        )
    )
    # searching all axes can only improve (or match) leaf balance
    assert allax["imbalance"] <= longest["imbalance"] * 1.1
