"""Fig 8: the evaluation datasets over time (quantitative stand-in).

The paper's Fig 8 shows renders of the Coal Boiler (timesteps 501, 2501,
4501) and Dam Break (0, 1001, 4001). We reproduce the figure's *content* as
distribution statistics: total particles, occupied-rank fraction, and
per-rank imbalance — the properties that drive the I/O results.
"""

import numpy as np

from conftest import emit
from repro.bench import format_table
from repro.workloads import CoalBoiler, DamBreak


def test_fig08a_coal_boiler_stats(benchmark):
    boiler = CoalBoiler()

    def run():
        rows = []
        for ts in (501, 2501, 4501):
            rd = boiler.rank_data(ts, 1536, sample_size=200_000)
            nz = rd.counts[rd.counts > 0]
            rows.append(
                [
                    ts,
                    f"{rd.total_particles / 1e6:.1f}M",
                    f"{len(nz) / 1536:.0%}",
                    f"{rd.counts.max() / max(rd.counts.mean(), 1):.1f}x",
                    f"{rd.total_bytes / 1e9:.2f}GB",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["timestep", "particles", "occupied ranks", "imbalance", "data"],
            rows,
            title="Fig 8a: Coal Boiler time series (1536 ranks)",
        )
    )
    # published totals and growing population
    assert rows[0][1] == "4.6M"
    assert rows[2][1] == "41.5M"
    # injection starts localized, spreads over time
    occupied = [float(r[2].rstrip("%")) for r in rows]
    assert occupied[0] < occupied[-1]


def test_fig08b_dam_break_stats(benchmark):
    dam = DamBreak(total=2_000_000)

    def run():
        rows = []
        for ts in (0, 1001, 4001):
            rd = dam.rank_data(ts, 1536, sample_size=200_000)
            nz = rd.counts[rd.counts > 0]
            rows.append(
                [
                    ts,
                    f"{rd.total_particles / 1e6:.2f}M",
                    f"{len(nz) / 1536:.0%}",
                    f"{rd.counts.max() / max(rd.counts.mean(), 1):.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["timestep", "particles", "occupied ranks", "imbalance"],
            rows,
            title="Fig 8b: Dam Break time series (2M particles, 1536 ranks)",
        )
    )
    # fixed count, spreading occupancy, falling imbalance
    totals = [r[1] for r in rows]
    assert len(set(totals)) == 1
    occupied = [float(r[2].rstrip("%")) for r in rows]
    assert occupied[0] < occupied[-1]
    imb = [float(r[3].rstrip("x")) for r in rows]
    assert imb[0] > imb[-1]
