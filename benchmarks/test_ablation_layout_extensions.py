"""Ablations over the §VII layout extensions.

The paper's §VII names compression/quantization ("would reduce memory use
further") and advanced binning schemes as future work; these benchmarks
quantify what each buys on realistic data:

- file size: plain vs quantized vs compressed vs both, against the raw
  payload;
- query cost: equi-width vs equi-depth bitmap pruning on a skewed,
  spatially correlated attribute;
- read cost: compressed treelets trade file size for decompression time.
"""

import time

import numpy as np

from conftest import emit
from repro.bat import AttributeFilter, BATBuildConfig, build_bat
from repro.bat.query import query_file
from repro.bench import format_table
from repro.workloads import CoalBoiler

N = 400_000


def _boiler_batch():
    return CoalBoiler().sample(3501, N)


def test_size_ablation(benchmark):
    def run():
        batch = _boiler_batch()
        rows = []
        for label, cfg in (
            ("plain", BATBuildConfig()),
            ("quantized", BATBuildConfig(quantize_positions=True)),
            ("compressed", BATBuildConfig(compress=True)),
            ("quant+comp", BATBuildConfig(quantize_positions=True, compress=True)),
        ):
            built = build_bat(batch, cfg)
            rows.append((label, built.nbytes, built.raw_bytes))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    raw = rows[0][2]
    emit(
        format_table(
            ["variant", "file MB", "overhead vs raw"],
            [[l, f"{n / 1e6:.1f}", f"{n / raw - 1:+.1%}"] for l, n, _ in rows],
            title=f"Layout-size ablation (Coal Boiler sample, {N:,} particles, raw {raw / 1e6:.1f} MB)",
        )
    )
    sizes = {l: n for l, n, _ in rows}
    assert sizes["quantized"] < sizes["plain"]
    assert sizes["compressed"] < sizes["plain"]
    assert sizes["quant+comp"] < min(sizes["quantized"], sizes["compressed"])
    # quantization alone removes 6 B/particle of the 12 B positions
    assert sizes["plain"] - sizes["quantized"] > 5.5 * N


def test_binning_ablation(benchmark):
    """Equi-depth bins prune a bottom-tail query on skewed data far better.

    The indexed attribute must be both *skewed* (to defeat equi-width bins)
    and *spatially coherent* (the paper's stated requirement for bitmap
    pruning, §VII); we use an exponential function of particle height, the
    shape of e.g. reaction-progress variables.
    """

    def run():
        from repro.types import ParticleBatch

        base = _boiler_batch()
        z = base.positions[:, 2].astype(np.float64)
        znorm = (z - z.min()) / max(z.max() - z.min(), 1e-9)
        rng = np.random.default_rng(7)
        progress = np.exp(6.0 * znorm) * (1.0 + 0.02 * rng.normal(size=len(z)))
        batch = ParticleBatch(base.positions, {"progress": progress})
        cut = float(np.quantile(progress, 0.1))
        out = {}
        for label, cfg in (
            ("equiwidth", BATBuildConfig()),
            ("equidepth", BATBuildConfig(attribute_binning="equidepth")),
        ):
            built = build_bat(batch, cfg)
            with built.open() as f:
                res, st = query_file(f, filters=[AttributeFilter("progress", 0.0, cut)])
                out[label] = (len(res), st.points_tested, st.pruned_bitmap)
        return out, int((progress <= cut).sum())

    out, expected = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["binning", "matched", "tested", "pruned subtrees"],
            [[l, m, t, p] for l, (m, t, p) in out.items()],
            title="Bitmap-binning ablation: bottom-decile progress query",
        )
    )
    for matched, _, _ in out.values():
        assert matched == expected
    assert out["equidepth"][1] < 0.8 * out["equiwidth"][1]


def test_compression_read_cost(benchmark):
    """Compressed treelets cost decompression on first touch, then cache."""

    def run():
        batch = _boiler_batch()
        out = {}
        for label, cfg in (("plain", BATBuildConfig()), ("compressed", BATBuildConfig(compress=True))):
            built = build_bat(batch, cfg)
            with built.open() as f:
                t0 = time.perf_counter()
                query_file(f, quality=1.0)
                cold = time.perf_counter() - t0
                t0 = time.perf_counter()
                query_file(f, quality=1.0)
                warm = time.perf_counter() - t0
            out[label] = (cold, warm)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["variant", "cold read ms", "warm read ms"],
            [[l, f"{c * 1e3:.1f}", f"{w * 1e3:.1f}"] for l, (c, w) in out.items()],
            title="Compressed-treelet read cost (full-quality sweep)",
        )
    )
    # decompression makes the first touch slower; the cache hides it after
    assert out["compressed"][0] > out["plain"][0]
    assert out["compressed"][1] < out["compressed"][0]
