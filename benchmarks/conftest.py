"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every ``test_*`` here regenerates one table or figure of the paper
(DESIGN.md §4 maps experiment → target). Benchmarks print the reproduced
rows/series so ``pytest benchmarks/ --benchmark-only -s`` output reads like
the paper's evaluation section; shape assertions guard the qualitative
claims (who wins, where curves flatten, rough factors).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core import TwoPhaseWriter
from repro.machines import stampede2
from repro.workloads import CoalBoiler, DamBreak

MB = 1 << 20

#: rank counts of the weak-scaling sweeps (paper: up to 24k on Stampede2,
#: 43k on Summit)
STAMPEDE2_RANKS = [96, 384, 1536, 6144, 24576]
SUMMIT_RANKS = [84, 336, 1344, 5376, 21504, 43008]

#: scale factor for materialized (real-file) datasets: keeps the published
#: count *ratios* while fitting a laptop-class machine
MATERIALIZE_SCALE = 5e-3


def emit(text: str) -> None:
    """Print a reproduced table under pytest's capture."""
    print("\n" + text)


@pytest.fixture(scope="session")
def coal_dataset(tmp_path_factory):
    """A materialized, scaled Coal Boiler timestep written at several target
    sizes — shared by Table I, Fig 13, and the overhead bench."""
    out = tmp_path_factory.mktemp("coal_ds")
    boiler = CoalBoiler()
    data = boiler.rank_data(4501, nranks=64, scale=MATERIALIZE_SCALE, materialize=True)
    paths = {}
    for target_mb in (1, 2, 4):
        rep = TwoPhaseWriter(stampede2(), target_size=target_mb * MB).write(
            data, out_dir=out / f"t{target_mb}", name="coal"
        )
        paths[target_mb] = rep.metadata_path
    return data, paths


@pytest.fixture(scope="session")
def dam_datasets(tmp_path_factory):
    """Materialized, scaled Dam Break timesteps (the 2M and 8M configs)."""
    out = tmp_path_factory.mktemp("dam_ds")
    result = {}
    for label, total in (("2M", 2_000_000), ("8M", 8_000_000)):
        dam = DamBreak(total=total)
        data = dam.rank_data(1001, nranks=64, scale=MATERIALIZE_SCALE, materialize=True)
        paths = {}
        for target_mb in (1, 2):
            rep = TwoPhaseWriter(stampede2(), target_size=target_mb * MB).write(
                data, out_dir=out / f"{label}_t{target_mb}", name="dam"
            )
            paths[target_mb] = rep.metadata_path
        result[label] = (data, paths)
    return result
