"""Ablation: automatic target-size selection vs fixed targets.

§VII proposes auto-selecting the target size from the particle count and
size; `repro.core.autotune` implements it from the paper's §VI-A2
guidance. The test drives the growing Coal Boiler series and checks that
the auto writer tracks close to the best fixed target at every step —
i.e. nobody has to hand-tune the portability parameter per machine/step.
"""

import numpy as np

from conftest import MB, emit
from repro.bench import format_table, two_phase_write_point
from repro.core import TwoPhaseWriter
from repro.machines import stampede2
from repro.workloads import CoalBoiler

FIXED_TARGETS = (8 * MB, 16 * MB, 32 * MB, 64 * MB)
TIMESTEPS = (501, 1501, 2501, 3501, 4501)


def test_auto_target_tracks_best_fixed(benchmark):
    def run():
        boiler = CoalBoiler()
        machine = stampede2()
        rows = []
        for ts in TIMESTEPS:
            data = boiler.rank_data(ts, 1536, sample_size=250_000)
            fixed = {
                t: two_phase_write_point(machine, data, t).bandwidth for t in FIXED_TARGETS
            }
            auto_rep = TwoPhaseWriter(machine, target_size="auto").write(data)
            rows.append((ts, fixed, auto_rep.bandwidth, auto_rep.n_files))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    ratios = []
    for ts, fixed, auto_bw, n_files in rows:
        best = max(fixed.values())
        ratios.append(auto_bw / best)
        table.append(
            [ts]
            + [f"{bw / 1e9:.1f}" for bw in fixed.values()]
            + [f"{auto_bw / 1e9:.1f}", f"{auto_bw / best:.2f}", n_files]
        )
    emit(
        format_table(
            ["timestep"] + [f"{t // MB}MB" for t in FIXED_TARGETS] + ["auto", "auto/best", "auto files"],
            table,
            title="Ablation: auto target size vs fixed (Coal Boiler @1536, GB/s)",
        )
    )
    # the auto writer achieves a solid fraction of the best fixed target at
    # every step, without per-step tuning
    assert min(ratios) > 0.5
    assert float(np.mean(ratios)) > 0.7
