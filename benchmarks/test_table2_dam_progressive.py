"""Table II: progressive single-thread reads on the Dam Break (2M and 8M).

Real measurements against real BAT files, as for Table I. Paper findings:
similar throughput across target sizes; the (relatively) smaller
configuration achieves higher throughput thanks to OS caching.
"""

from conftest import emit
from repro.bench import format_table, progressive_read_benchmark


def test_table2_progressive_reads(benchmark, dam_datasets):
    def run():
        out = {}
        for label, (data, paths) in dam_datasets.items():
            out[label] = {
                t: progressive_read_benchmark(paths[t], steps=10) for t in sorted(paths)
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, per_target in results.items():
        for t, r in per_target.items():
            rows.append(
                [
                    label,
                    f"{t}MB",
                    f"{r['avg_read_ms']:.1f}",
                    f"{r['throughput_pts_per_ms']:.0f}",
                ]
            )
    emit(
        format_table(
            ["dataset", "target", "avg read (ms)", "throughput (pts/ms)"],
            rows,
            title="Table II: Dam Break progressive single-thread reads (scaled datasets)",
        )
    )

    for label, (data, _) in dam_datasets.items():
        for r in results[label].values():
            assert r["total_points"] == data.total_particles

    # similar throughput across targets within each dataset
    for label in results:
        tp = [r["throughput_pts_per_ms"] for r in results[label].values()]
        assert max(tp) / min(tp) < 2.5

    # the larger dataset takes longer per sweep step overall
    avg_2m = sum(r["avg_read_ms"] for r in results["2M"].values()) / len(results["2M"])
    avg_8m = sum(r["avg_read_ms"] for r in results["8M"].values()) / len(results["8M"])
    assert avg_8m > avg_2m
