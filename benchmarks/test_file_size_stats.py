"""§VI-A2 text: file count/size statistics, adaptive vs AUG.

Paper numbers at the 8 MB target, Coal Boiler timestep 4501, 1536 ranks:
AUG wrote 296 files (mean 10.2 MB, std 13.9 MB, max 72.9 MB); adaptive
wrote 327 files (mean 9.2 MB, std 8.4 MB, max 36.6 MB). The claim to
reproduce: adaptive writes somewhat more, slightly smaller files with a
markedly lower standard deviation and roughly half the maximum size.
"""

import numpy as np

from conftest import MB, emit
from repro.baselines import build_aug_plan
from repro.bench import format_table
from repro.core import AggTreeConfig, build_aggregation_tree
from repro.workloads import CoalBoiler


def test_file_size_stats(benchmark):
    def run():
        boiler = CoalBoiler()
        rd = boiler.rank_data(4501, 1536, sample_size=400_000)
        adaptive = build_aggregation_tree(
            rd.bounds, rd.counts, rd.bytes_per_particle,
            AggTreeConfig(target_size=8 * MB, overfull_cost_ratio=4.0, overfull_factor=1.5),
        )
        aug = build_aug_plan(rd.bounds, rd.counts, rd.bytes_per_particle, 8 * MB)
        return adaptive.file_sizes() / MB, aug.file_sizes() / MB

    adp, aug = benchmark.pedantic(run, rounds=1, iterations=1)

    def stats(s):
        return [len(s), f"{s.mean():.1f}", f"{s.std():.1f}", f"{s.max():.1f}"]

    emit(
        format_table(
            ["strategy", "files", "mean MB", "std MB", "max MB"],
            [
                ["adaptive"] + stats(adp),
                ["AUG"] + stats(aug),
                ["paper adaptive", 327, 9.2, 8.4, 36.6],
                ["paper AUG", 296, 10.2, 13.9, 72.9],
            ],
            title="File statistics: Coal Boiler ts 4501, 8MB target, 1536 ranks",
        )
    )

    # the qualitative relations the paper reports
    assert len(adp) > len(aug)  # adaptive writes more files
    assert adp.mean() < aug.mean()  # ... of smaller mean size
    assert adp.std() < 0.75 * aug.std()  # ... much more uniform
    assert adp.max() < 0.75 * aug.max()  # ... and avoids huge outliers
