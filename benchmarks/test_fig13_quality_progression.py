"""Fig 13: visual quality progression on the Coal Boiler.

The paper shows renders at qualities 0.2, 0.4, 0.8 with an LOD policy that
inflates particle radii at coarse levels. We reproduce the figure's data:
points loaded per quality, the shown fraction, and the volume-preserving
radius the example policy would draw with — plus the invariant that the
coarse subsets span the full data bounds (no region drops out).
"""

import numpy as np

from conftest import emit
from repro.bench import format_table
from repro.core.dataset import BATDataset
from repro.viz import quality_progression


def test_fig13_quality_progression(benchmark, coal_dataset):
    data, paths = coal_dataset
    meta_path = paths[2]

    def run():
        with BATDataset(meta_path) as ds:
            return quality_progression(ds, qualities=(0.2, 0.4, 0.8, 1.0))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ["quality", "points", "fraction", "LOD radius"],
            [
                [r["quality"], r["points"], f"{r['fraction']:.1%}", f"{r['radius']:.2f}"]
                for r in rows
            ],
            title="Fig 13: Coal Boiler quality progression (radius x of base)",
        )
    )

    pts = [r["points"] for r in rows]
    assert pts == sorted(pts)
    assert rows[-1]["fraction"] == 1.0
    radii = [r["radius"] for r in rows]
    assert radii == sorted(radii, reverse=True)


def test_fig13_coarse_levels_preserve_shape(benchmark, coal_dataset):
    """The stratified LOD sample must cover the object's extent, which is
    what lets inflated radii 'fill holes and preserve the overall shape'."""
    data, paths = coal_dataset

    def run():
        with BATDataset(paths[2]) as ds:
            full, _ = ds.query(quality=1.0)
            coarse, _ = ds.query(quality=0.2)
        return full.positions, coarse.positions

    full_pos, coarse_pos = benchmark.pedantic(run, rounds=1, iterations=1)
    full_ext = full_pos.max(axis=0) - full_pos.min(axis=0)
    coarse_ext = coarse_pos.max(axis=0) - coarse_pos.min(axis=0)
    assert (coarse_ext > 0.8 * full_ext).all()
    # and the coarse centroid stays near the full centroid
    drift = np.abs(coarse_pos.mean(axis=0) - full_pos.mean(axis=0))
    assert (drift < 0.15 * full_ext).all()
