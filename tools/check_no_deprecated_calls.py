#!/usr/bin/env python3
"""Fail if internal code still calls the deprecated pre-QueryRequest shims.

The legacy forms — ``ds.query(quality=..., box=...)``,
``service.request(sid, quality, ...)`` — are kept only for external
callers; everything under ``src/repro`` must construct a
:class:`repro.QueryRequest`. This script walks the AST of every module
and flags any ``.query(...)`` / ``.request(...)`` / ``.submit(...)``
method call that passes one of the legacy query keywords directly, which
is exactly the signature the shims deprecate.

Exit status 0 when clean; 1 with a ``path:line`` listing otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: methods that grew a QueryRequest-first signature in v4
SHIMMED_METHODS = {"query", "request", "submit", "query_over_time"}

#: keywords that only the deprecated signatures accept directly
LEGACY_KEYWORDS = {"quality", "prev_quality", "attributes"}


def find_violations(root: Path) -> list[tuple[Path, int, str]]:
    violations = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in SHIMMED_METHODS:
                continue
            used = {kw.arg for kw in node.keywords if kw.arg} & LEGACY_KEYWORDS
            if used:
                violations.append(
                    (path, node.lineno, f".{func.attr}(... {', '.join(sorted(used))}=...)")
                )
    return violations


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("src/repro")
    violations = find_violations(root)
    for path, line, what in violations:
        print(f"{path}:{line}: deprecated call form {what}; pass a repro.QueryRequest")
    if violations:
        print(f"\n{len(violations)} internal caller(s) still use deprecated shims")
        return 1
    print(f"OK: no internal callers of deprecated query shims under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
