#!/usr/bin/env python3
"""Fail CI when the v4 codec read/write overhead regresses past thresholds.

Compares one freshly recorded compress-suite data point
(``python -m repro.bench --suite compress --record <json>``) against the
checked-in ceilings in ``BENCH_thresholds.json``:

- ``max_query_ratio_v4_over_v3``: query_seconds(v4-auto) / query_seconds(v3)
- ``max_write_ratio_v4_over_v3``: write_seconds(v4-auto) / write_seconds(v3)
- ``min_disk_reduction_x``: on-disk v3/v4 size ratio

Wall-clock ratios on shared CI runners are noisy, so the ceilings carry
deliberate headroom over the reference-container measurements recorded in
``BENCH_pr6.json``; the gate exists to catch order-of-magnitude decode or
encode regressions (an accidental per-bit loop, a dropped cache tier),
not 10 % drift. Correctness (byte-identity of v4 queries against v3) is
asserted *inside* the suite itself — if the benchmark completed, the
results were identical.

Exit status 0 when within thresholds; 1 with a metric listing otherwise.

    python tools/check_bench_regression.py BENCH_ci_compress.json \
        [BENCH_thresholds.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(bench_path: str, thresholds_path: str) -> list[str]:
    """Return a list of human-readable violations (empty when clean)."""
    bench = json.loads(Path(bench_path).read_text())
    thresholds = json.loads(Path(thresholds_path).read_text())

    if bench.get("benchmark") != "compression":
        return [f"{bench_path}: not a compress-suite data point"]

    results = bench["results"]
    v3 = results["variants"]["v3"]
    v4 = results["variants"]["v4-auto"]
    query_ratio = v4["query_seconds"] / v3["query_seconds"]
    write_ratio = v4["write_seconds"] / v3["write_seconds"]
    disk_reduction = results["disk_reduction_x"]

    failures = []
    ceiling = thresholds["max_query_ratio_v4_over_v3"]
    if query_ratio > ceiling:
        failures.append(
            f"query ratio v4/v3 = {query_ratio:.2f} exceeds ceiling {ceiling:.2f} "
            f"(v3 {v3['query_seconds']:.3f}s, v4 {v4['query_seconds']:.3f}s)"
        )
    ceiling = thresholds["max_write_ratio_v4_over_v3"]
    if write_ratio > ceiling:
        failures.append(
            f"write ratio v4/v3 = {write_ratio:.2f} exceeds ceiling {ceiling:.2f} "
            f"(v3 {v3['write_seconds']:.3f}s, v4 {v4['write_seconds']:.3f}s)"
        )
    floor = thresholds["min_disk_reduction_x"]
    if disk_reduction < floor:
        failures.append(
            f"disk reduction {disk_reduction:.2f}x below floor {floor:.2f}x"
        )
    if not results.get("queries_byte_identical", False):
        failures.append("v4 queries were not byte-identical to v3")
    return failures


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = argv[1]
    thresholds_path = (
        argv[2] if len(argv) == 3
        else str(Path(__file__).resolve().parent.parent / "BENCH_thresholds.json")
    )
    failures = check(bench_path, thresholds_path)
    if failures:
        print(f"benchmark regression gate FAILED for {bench_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"benchmark regression gate ok for {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
