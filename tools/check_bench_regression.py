#!/usr/bin/env python3
"""Fail CI when a recorded benchmark data point regresses past thresholds.

Dispatches on the data point's ``benchmark`` field and compares it
against the checked-in ceilings in ``BENCH_thresholds.json``:

compress suite (``python -m repro.bench --suite compress --record <json>``):

- ``max_query_ratio_v4_over_v3``: query_seconds(v4-auto) / query_seconds(v3)
- ``max_write_ratio_v4_over_v3``: write_seconds(v4-auto) / write_seconds(v3)
- ``min_disk_reduction_x``: on-disk v3/v4 size ratio

stream suite (``python -m repro.bench --suite stream --record <json>``),
keys under ``thresholds["stream"]``:

- ``max_p99_ms``: p99 latency of the collapse-enabled run
- ``max_ttfi_p50_ms``: median time-to-first-increment, collapse enabled
- ``min_collapse_hit_rate``: in-flight collapse hit rate floor
- ``min_decoded_bytes_saved``: decode work the collapse run must save
  over the collapse-disabled baseline (1 = "any saving at all")

shard suite (``python -m repro.bench --suite shard --record <json>``),
keys under ``thresholds["shard"]``:

- ``max_p99_ms``: p99 latency of the sharded run
- ``max_scatter_gather_overhead_x``: sharded p50 / single-process p50 —
  the ceiling on what crossing process boundaries may cost
- plus the recorded ``resume_correctness_ok`` and ``byte_identity_ok``
  flags (the crash-resume drill and the identity sweep must have passed)

neighbors suite (``python -m repro.bench --suite neighbors --record <json>``),
keys under ``thresholds["neighbors"]``:

- ``min_files_opened_ratio``: naive-halo-full-read files / tree-engine
  files — how much the ghost-strip planner must prune
- ``max_ghost_fraction_of_naive``: ghost points exchanged as a fraction
  of the naive halo point volume
- ``min_speedup_vs_brute``: tree-engine wall-clock floor vs brute
- plus the recorded byte-identity flags (summary and per-workload)

Wall-clock numbers on shared CI runners are noisy, so the ceilings carry
deliberate headroom over the reference-container measurements recorded in
``BENCH_pr6.json`` / ``BENCH_pr7.json``; the gate exists to catch
order-of-magnitude decode, encode, or serving regressions (an accidental
per-bit loop, a dropped cache tier, a collapse table that stops
matching), not 10 % drift. Correctness (byte-identity against direct
queries) is asserted *inside* the suites themselves — if the benchmark
completed, the results were identical — and re-checked here from the
recorded flags.

Exit status 0 when within thresholds; 1 with a metric listing otherwise.

    python tools/check_bench_regression.py BENCH_ci_compress.json \
        [BENCH_thresholds.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _check_compress(results: dict, thresholds: dict) -> list[str]:
    v3 = results["variants"]["v3"]
    v4 = results["variants"]["v4-auto"]
    query_ratio = v4["query_seconds"] / v3["query_seconds"]
    write_ratio = v4["write_seconds"] / v3["write_seconds"]
    disk_reduction = results["disk_reduction_x"]

    failures = []
    ceiling = thresholds["max_query_ratio_v4_over_v3"]
    if query_ratio > ceiling:
        failures.append(
            f"query ratio v4/v3 = {query_ratio:.2f} exceeds ceiling {ceiling:.2f} "
            f"(v3 {v3['query_seconds']:.3f}s, v4 {v4['query_seconds']:.3f}s)"
        )
    ceiling = thresholds["max_write_ratio_v4_over_v3"]
    if write_ratio > ceiling:
        failures.append(
            f"write ratio v4/v3 = {write_ratio:.2f} exceeds ceiling {ceiling:.2f} "
            f"(v3 {v3['write_seconds']:.3f}s, v4 {v4['write_seconds']:.3f}s)"
        )
    floor = thresholds["min_disk_reduction_x"]
    if disk_reduction < floor:
        failures.append(
            f"disk reduction {disk_reduction:.2f}x below floor {floor:.2f}x"
        )
    if not results.get("queries_byte_identical", False):
        failures.append("v4 queries were not byte-identical to v3")
    return failures


def _check_stream(results: dict, thresholds: dict) -> list[str]:
    t = thresholds.get("stream")
    if t is None:
        return ["thresholds file has no 'stream' section"]
    coll = results["variants"]["collapse"]

    failures = []
    p99 = coll["latency_ms"]["p99"]
    if p99 > t["max_p99_ms"]:
        failures.append(
            f"collapse-run p99 = {p99:.1f} ms exceeds ceiling {t['max_p99_ms']:.1f} ms"
        )
    ttfi = coll["ttfi_ms"]["p50"]
    if ttfi > t["max_ttfi_p50_ms"]:
        failures.append(
            f"time-to-first-increment p50 = {ttfi:.1f} ms exceeds ceiling "
            f"{t['max_ttfi_p50_ms']:.1f} ms"
        )
    hit_rate = results["collapse_hit_rate"]
    if hit_rate < t["min_collapse_hit_rate"]:
        failures.append(
            f"collapse hit rate {hit_rate:.2f} below floor "
            f"{t['min_collapse_hit_rate']:.2f}"
        )
    saved = results["decoded_bytes_saved"]
    if saved < t["min_decoded_bytes_saved"]:
        failures.append(
            f"decoded bytes saved {saved} below floor {t['min_decoded_bytes_saved']}"
        )
    if not results.get("byte_identity_ok", False):
        failures.append("streamed responses were not byte-identical to direct queries")
    return failures


def _check_shard(results: dict, thresholds: dict) -> list[str]:
    t = thresholds.get("shard")
    if t is None:
        return ["thresholds file has no 'shard' section"]
    sharded = results["variants"]["sharded"]

    failures = []
    p99 = sharded["latency_ms"]["p99"]
    if p99 > t["max_p99_ms"]:
        failures.append(
            f"sharded p99 = {p99:.1f} ms exceeds ceiling {t['max_p99_ms']:.1f} ms"
        )
    overhead = results["scatter_gather_overhead_x"]
    if overhead > t["max_scatter_gather_overhead_x"]:
        failures.append(
            f"scatter-gather overhead {overhead:.2f}x p50 exceeds ceiling "
            f"{t['max_scatter_gather_overhead_x']:.2f}x"
        )
    if not results.get("job", {}).get("resume_correctness_ok", False):
        failures.append(
            "job sweep did not resume correctly after the crash drill"
        )
    if not results.get("byte_identity_ok", False):
        failures.append(
            "sharded responses were not byte-identical to direct queries"
        )
    return failures


def _check_reorg(results: dict, thresholds: dict) -> list[str]:
    t = thresholds.get("reorg")
    if t is None:
        return ["thresholds file has no 'reorg' section"]

    failures = []
    opens = results["files_opened_reduction"]
    if opens < t["min_files_opened_reduction"]:
        failures.append(
            f"files-opened reduction {opens:.2f} below floor "
            f"{t['min_files_opened_reduction']:.2f}"
        )
    decoded = results["decoded_bytes_reduction"]
    if decoded < t["min_decoded_bytes_reduction"]:
        failures.append(
            f"decoded-bytes reduction {decoded:.2f} below floor "
            f"{t['min_decoded_bytes_reduction']:.2f}"
        )
    p99_ratio = results["p99_ratio"]
    if p99_ratio > t["max_p99_ratio"]:
        failures.append(
            f"post-reorg p99 is {p99_ratio:.2f}x the pre-reorg p99, "
            f"ceiling {t['max_p99_ratio']:.2f}x"
        )
    for phase in ("before", "after"):
        if results[phase]["identity_samples_checked"] < 1:
            failures.append(f"no identity samples were checked {phase} reorg")
    gen_from = results["reorg"]["generation_from"]
    gen_to = results["reorg"]["generation_to"]
    if gen_to <= gen_from:
        failures.append(
            f"manifest generation did not advance ({gen_from} -> {gen_to})"
        )
    return failures


def _check_neighbors(bench: dict, thresholds: dict) -> list[str]:
    t = thresholds.get("neighbors")
    if t is None:
        return ["thresholds file has no 'neighbors' section"]
    summary = bench["summary"]

    failures = []
    ratio = summary["files_opened_ratio"]
    if ratio < t["min_files_opened_ratio"]:
        failures.append(
            f"files-opened ratio {ratio:.2f}x below floor "
            f"{t['min_files_opened_ratio']:.2f}x (tree opened "
            f"{summary['tree_files_opened']}, naive halo-full-read "
            f"{summary['brute_files_opened']})"
        )
    naive = summary["naive_halo_points"]
    ghost_frac = summary["ghost_points"] / naive if naive else 0.0
    if ghost_frac > t["max_ghost_fraction_of_naive"]:
        failures.append(
            f"ghost exchange moved {ghost_frac:.2f} of the naive halo "
            f"point volume, ceiling {t['max_ghost_fraction_of_naive']:.2f} "
            f"({summary['ghost_points']} ghost vs {naive} naive points)"
        )
    speedup = summary["speedup_vs_brute"]
    if speedup < t["min_speedup_vs_brute"]:
        failures.append(
            f"tree engine speedup {speedup:.2f}x over brute below floor "
            f"{t['min_speedup_vs_brute']:.2f}x"
        )
    if not summary.get("byte_identity_ok", False):
        failures.append(
            "tree neighbor lists were not byte-identical to the "
            "brute-force reference"
        )
    for name, wl in bench["results"].items():
        if not wl.get("identical", False):
            failures.append(
                f"workload {name!r}: tree result differed from brute oracle"
            )
    return failures


def check(bench_path: str, thresholds_path: str) -> list[str]:
    """Return a list of human-readable violations (empty when clean)."""
    bench = json.loads(Path(bench_path).read_text())
    thresholds = json.loads(Path(thresholds_path).read_text())

    kind = bench.get("benchmark")
    if kind == "compression":
        return _check_compress(bench["results"], thresholds)
    if kind == "stream":
        return _check_stream(bench["results"], thresholds)
    if kind == "shard":
        return _check_shard(bench["results"], thresholds)
    if kind == "reorg":
        return _check_reorg(bench["results"], thresholds)
    if kind == "neighbors":
        return _check_neighbors(bench, thresholds)
    return [f"{bench_path}: no regression gate for benchmark kind {kind!r}"]


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = argv[1]
    thresholds_path = (
        argv[2] if len(argv) == 3
        else str(Path(__file__).resolve().parent.parent / "BENCH_thresholds.json")
    )
    failures = check(bench_path, thresholds_path)
    if failures:
        print(f"benchmark regression gate FAILED for {bench_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"benchmark regression gate ok for {bench_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
